"""HashJoinEngine: RDFox-like semi-naive datalog over hash indexes.

RDFox stores triples in a structure supporting "parallel hash-joins in a
mostly lock-free manner": triples are reachable through hash indexes on
⟨s,p⟩ / ⟨p,o⟩ / p / s / o, and evaluation is semi-naive — every join
requires at least one atom matched against the per-iteration delta, so
nothing is re-derived from scratch.

This is the strongest baseline: its dict probes are O(1), but each probe
is a *random* memory access — exactly the contrast with Inferray's
sequential scans that the Figure-7/8 experiments quantify.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .base import BaselineReasoner, BaselineStats, EncodedTriple
from .datalog import Atom, DatalogRule, is_var, match_atom, substitute


class HashJoinEngine(BaselineReasoner):
    """Semi-naive evaluation with hash indexes on all bound shapes."""

    engine_name = "hashjoin"

    def __init__(self, ruleset="rdfs-default", *, tracer=None):
        super().__init__(ruleset, tracer=tracer)
        self._by_p: Dict[int, List[EncodedTriple]] = {}
        self._by_ps: Dict[Tuple[int, int], List[EncodedTriple]] = {}
        self._by_po: Dict[Tuple[int, int], List[EncodedTriple]] = {}
        self._by_s: Dict[int, List[EncodedTriple]] = {}
        self._by_o: Dict[int, List[EncodedTriple]] = {}

    def _insert_fact(self, fact: EncodedTriple) -> bool:
        if not super()._insert_fact(fact):
            return False
        s, p, o = fact
        self._by_p.setdefault(p, []).append(fact)
        self._by_ps.setdefault((p, s), []).append(fact)
        self._by_po.setdefault((p, o), []).append(fact)
        self._by_s.setdefault(s, []).append(fact)
        self._by_o.setdefault(o, []).append(fact)
        if self.tracer is not None:
            self.tracer.alloc("hash-index", 400)  # 5 dict entries + nodes
            self.tracer.random_access("hash-index", 5)
        return True

    # ------------------------------------------------------------------
    # Index selection
    # ------------------------------------------------------------------
    def _probe(self, atom: Atom) -> Iterable[EncodedTriple]:
        """Most selective index lookup for a (partially) ground atom."""
        s_bound = not is_var(atom.s)
        p_bound = not is_var(atom.p)
        o_bound = not is_var(atom.o)
        if self.tracer is not None:
            self.tracer.random_access("hash-index", 1)
        if p_bound and s_bound and o_bound:
            fact = (atom.s, atom.p, atom.o)
            return (fact,) if fact in self.facts else ()
        if p_bound and s_bound:
            return self._by_ps.get((atom.p, atom.s), ())
        if p_bound and o_bound:
            return self._by_po.get((atom.p, atom.o), ())
        if p_bound:
            return self._by_p.get(atom.p, ())
        if s_bound:
            return self._by_s.get(atom.s, ())
        if o_bound:
            return self._by_o.get(atom.o, ())
        return self.facts

    # ------------------------------------------------------------------
    # Semi-naive evaluation
    # ------------------------------------------------------------------
    def _eval_with_delta(
        self,
        rule: DatalogRule,
        delta_index: int,
        delta: List[EncodedTriple],
        derived: Set[EncodedTriple],
    ) -> int:
        """Instantiations where body[delta_index] matches a delta fact."""
        raw = 0
        rest = [i for i in range(len(rule.body)) if i != delta_index]

        def recurse(position: int, bindings) -> None:
            nonlocal raw
            if position == len(rest):
                for var_a, var_b in rule.not_equal:
                    if bindings[var_a] == bindings[var_b]:
                        return
                for head in rule.heads:
                    ground = substitute(head, bindings)
                    derived.add((ground.s, ground.p, ground.o))
                    raw += 1
                return
            atom = substitute(rule.body[rest[position]], bindings)
            for fact in self._probe(atom):
                extended = match_atom(atom, fact, bindings)
                if extended is not None:
                    recurse(position + 1, extended)

        delta_atom = rule.body[delta_index]
        for fact in delta:
            bindings = match_atom(delta_atom, fact, {})
            if bindings is not None:
                recurse(0, bindings)
        return raw

    def materialize(self, *, timeout_seconds=None) -> BaselineStats:
        """Semi-naive fixed point: deltas drive every join."""
        started = time.perf_counter()
        deadline = None if timeout_seconds is None else started + timeout_seconds
        n_input = len(self.facts)
        iterations = 0
        duplicates = 0
        delta: List[EncodedTriple] = list(self.facts)
        while delta:
            iterations += 1
            derived: Set[EncodedTriple] = set()
            raw = 0
            for rule in self.rules:
                self._check_deadline(deadline, self.engine_name)
                for delta_index in range(len(rule.body)):
                    raw += self._eval_with_delta(
                        rule, delta_index, delta, derived
                    )
            new_facts = derived - self.facts
            duplicates += raw - len(new_facts)
            for fact in new_facts:
                self._insert_fact(fact)
            delta = list(new_facts)
        return self._finish_stats(started, n_input, iterations, duplicates)
