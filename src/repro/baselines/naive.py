"""NaiveEngine: Sesame-like pass-based fixed point (the oracle).

Each pass re-evaluates every rule against the *entire* working memory —
"rules are iteratively applied to the data until an iteration derives no
triples" with no delta tracking, the simplest iterative-rules design the
paper describes for Sesame.  The only concession to usability is a
per-predicate statement list (Sesame's structure is "a linked list of
statements" with an index to iterate triples of a predicate), used for
atoms whose predicate is a constant; variable-predicate atoms scan the
full list.

Being structurally independent from both the Inferray executors and the
other baselines, this engine doubles as the differential-testing oracle.
"""

from __future__ import annotations

import time
from typing import Dict, List, Set

from .base import BaselineReasoner, BaselineStats, EncodedTriple
from .datalog import DatalogRule, is_var, match_atom, substitute


class NaiveEngine(BaselineReasoner):
    """Pass-based re-evaluation over per-predicate statement lists."""

    engine_name = "naive"

    def __init__(self, ruleset="rdfs-default", *, tracer=None):
        super().__init__(ruleset, tracer=tracer)
        self._by_predicate: Dict[int, List[EncodedTriple]] = {}
        self._all: List[EncodedTriple] = []

    def _insert_fact(self, fact: EncodedTriple) -> bool:
        if not super()._insert_fact(fact):
            return False
        self._by_predicate.setdefault(fact[1], []).append(fact)
        self._all.append(fact)
        if self.tracer is not None:
            self.tracer.alloc("naive-list", 88)  # statement node + slots
            self.tracer.pointer_chase("naive-list", 1)
        return True

    def _candidates(self, atom, bindings) -> List[EncodedTriple]:
        predicate = atom.p
        if is_var(predicate):
            predicate = bindings.get(predicate)
        if predicate is None or is_var(predicate):
            if self.tracer is not None:
                self.tracer.sequential_scan("naive-list", 24 * len(self._all))
            return self._all
        bucket = self._by_predicate.get(predicate, [])
        if self.tracer is not None:
            self.tracer.sequential_scan("naive-list", 24 * len(bucket))
        return bucket

    def _eval_rule(
        self,
        rule: DatalogRule,
        derived: Set[EncodedTriple],
        deadline=None,
    ) -> int:
        """All instantiations of ``rule`` against the full memory."""
        raw = 0
        outer = 0

        def recurse(index: int, bindings) -> None:
            nonlocal raw, outer
            if index == len(rule.body):
                for var_a, var_b in rule.not_equal:
                    if bindings[var_a] == bindings[var_b]:
                        return
                for head in rule.heads:
                    ground = substitute(head, bindings)
                    derived.add((ground.s, ground.p, ground.o))
                    raw += 1
                return
            atom = rule.body[index]
            for fact in self._candidates(atom, bindings):
                if index == 0:
                    outer += 1
                    if outer % 4096 == 0:
                        self._check_deadline(deadline, self.engine_name)
                extended = match_atom(atom, fact, bindings)
                if extended is not None:
                    recurse(index + 1, extended)

        recurse(0, {})
        return raw

    def materialize(self, *, timeout_seconds=None) -> BaselineStats:
        """Fixed point by whole-memory passes."""
        started = time.perf_counter()
        deadline = None if timeout_seconds is None else started + timeout_seconds
        n_input = len(self.facts)
        iterations = 0
        duplicates = 0
        while True:
            iterations += 1
            self._check_deadline(deadline, self.engine_name)
            derived: Set[EncodedTriple] = set()
            raw = 0
            for rule in self.rules:
                raw += self._eval_rule(rule, derived, deadline)
            new_facts = derived - self.facts
            duplicates += raw - len(new_facts)
            if not new_facts:
                break
            for fact in new_facts:
                self._insert_fact(fact)
        return self._finish_stats(
            started, n_input, iterations, duplicates
        )
