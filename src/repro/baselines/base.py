"""Shared scaffolding for the baseline (comparator) reasoners.

Each baseline implements the same rulesets as Inferray but with the
evaluation strategy the paper attributes to a competitor system:

* :class:`repro.baselines.naive.NaiveEngine` — Sesame-like pass-based
  re-evaluation over statement lists (also the differential oracle);
* :class:`repro.baselines.hashjoin.HashJoinEngine` — RDFox-like
  semi-naive datalog over hash indexes;
* :class:`repro.baselines.rete.ReteEngine` — OWLIM/Jena-like RETE
  pattern network.

They share loading/encoding (the same dictionary substrate, so decoded
closures are directly comparable) and the datalog rule forms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from ..core.engine import MaterializationTimeout
from ..dictionary.encoding import Dictionary, encode_dataset
from ..rdf.ntriples import parse_file
from ..rdf.terms import Triple
from ..rules.rulesets import ruleset_rule_names
from ..rules.spec import Vocab
from .datalog import DatalogRule, datalog_ruleset

EncodedTriple = Tuple[int, int, int]


@dataclass
class BaselineStats:
    """Outcome of one baseline materialization run."""

    engine: str = ""
    n_input: int = 0
    n_inferred: int = 0
    n_total: int = 0
    iterations: int = 0
    duplicates: int = 0
    total_seconds: float = 0.0
    extra: Dict[str, int] = field(default_factory=dict)


class BaselineReasoner:
    """Base class: loading, encoding and decoded views."""

    engine_name = "baseline"

    def __init__(
        self,
        ruleset: Union[str, List[str]] = "rdfs-default",
        *,
        tracer=None,
    ):
        if isinstance(ruleset, str):
            names = ruleset_rule_names(ruleset)
            self.ruleset_name = ruleset
        else:
            names = list(ruleset)
            self.ruleset_name = "custom"
        self.dictionary = Dictionary()
        self.vocab = Vocab(self.dictionary)
        self.rules: List[DatalogRule] = datalog_ruleset(names, self.vocab)
        self.facts: Set[EncodedTriple] = set()
        self.tracer = tracer
        self.stats: Optional[BaselineStats] = None

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_triples(self, triples: Iterable[Triple]) -> int:
        """Encode and add decoded triples; returns the count supplied."""
        triple_list = list(triples)
        _, encoded = encode_dataset(triple_list, self.dictionary)
        for fact in encoded:
            self._insert_fact(fact)
        return len(triple_list)

    def load_file(self, path: str) -> int:
        """Parse and load an N-Triples file."""
        return self.load_triples(parse_file(path))

    def _insert_fact(self, fact: EncodedTriple) -> bool:
        """Add a fact to the working memory; subclasses extend indexes."""
        if fact in self.facts:
            return False
        self.facts.add(fact)
        return True

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def materialize(
        self, *, timeout_seconds: Optional[float] = None
    ) -> BaselineStats:
        """Run the fixed point; subclasses implement the strategy."""
        raise NotImplementedError

    @staticmethod
    def _check_deadline(deadline: Optional[float], engine: str) -> None:
        """Raise :class:`MaterializationTimeout` past the deadline."""
        if deadline is not None and time.perf_counter() > deadline:
            raise MaterializationTimeout(f"{engine}: timeout")

    @property
    def n_triples(self) -> int:
        """Facts currently in working memory."""
        return len(self.facts)

    def __len__(self) -> int:
        return len(self.facts)

    def triples(self) -> Iterator[Triple]:
        """Decoded iteration over the working memory."""
        decode = self.dictionary.decode_triple
        for fact in self.facts:
            yield decode(fact)

    def as_decoded_set(self) -> Set[Triple]:
        """Decoded snapshot — the cross-engine comparison currency."""
        return set(self.triples())

    def encoded_set(self) -> Set[EncodedTriple]:
        """Raw encoded snapshot."""
        return set(self.facts)

    def _finish_stats(
        self,
        started: float,
        n_input: int,
        iterations: int,
        duplicates: int,
        **extra: int,
    ) -> BaselineStats:
        stats = BaselineStats(
            engine=self.engine_name,
            n_input=n_input,
            n_total=len(self.facts),
            n_inferred=len(self.facts) - n_input,
            iterations=iterations,
            duplicates=duplicates,
            total_seconds=time.perf_counter() - started,
            extra=dict(extra),
        )
        self.stats = stats
        return stats
