"""Baseline comparator engines (paper §6 competitors, reimplemented)."""

from .base import BaselineReasoner, BaselineStats
from .datalog import (
    Atom,
    DatalogRule,
    datalog_form,
    datalog_ruleset,
    is_var,
    match_atom,
    substitute,
)
from .hashjoin import HashJoinEngine
from .naive import NaiveEngine
from .rete import ReteEngine

__all__ = [
    "Atom",
    "BaselineReasoner",
    "BaselineStats",
    "DatalogRule",
    "HashJoinEngine",
    "NaiveEngine",
    "ReteEngine",
    "datalog_form",
    "datalog_ruleset",
    "is_var",
    "match_atom",
    "substitute",
]
