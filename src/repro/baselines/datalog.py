"""Datalog forms of the Table-5 rules, shared by the baseline engines.

The comparator engines (naive / hash-join / RETE) evaluate the rulesets
as plain datalog over encoded triples — *without* Inferray's closure
pre-pass or sorted layout.  That is precisely the paper's comparison:
iterative systems pay the duplicate-explosion cost on transitive rules
(SCM-SCO, SCM-SPO, EQ-TRANS, PRP-TRP appear here as ordinary 2- and
3-atom rules).

An :class:`Atom` holds a variable (a ``str`` beginning with ``?``) or an
encoded constant (``int``) in each position; a rule may carry
inequality constraints between variables (PRP-FP / PRP-IFP) and several
head atoms.  Fixed points of these programs coincide with Inferray's
materialization — asserted by the differential tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..rules.spec import Vocab

TermSpec = Union[str, int]  # "?var" or encoded constant id
EncodedTriple = Tuple[int, int, int]


@dataclass(frozen=True)
class Atom:
    """One triple pattern of a datalog rule body or head."""

    s: TermSpec
    p: TermSpec
    o: TermSpec

    def positions(self) -> Tuple[TermSpec, TermSpec, TermSpec]:
        return (self.s, self.p, self.o)

    def variables(self) -> List[str]:
        """Variables in this atom, in position order."""
        return [t for t in self.positions() if isinstance(t, str)]


@dataclass(frozen=True)
class DatalogRule:
    """body₁ ∧ … ∧ bodyₙ [∧ v≠w …] → head₁ ∧ … ∧ headₘ."""

    name: str
    body: Tuple[Atom, ...]
    heads: Tuple[Atom, ...]
    not_equal: Tuple[Tuple[str, str], ...] = field(default=())


def is_var(term: TermSpec) -> bool:
    """True for a variable spec (``"?x"``)."""
    return isinstance(term, str)


def _r(name, body, heads, not_equal=()):
    return DatalogRule(
        name,
        tuple(Atom(*a) for a in body),
        tuple(Atom(*a) for a in heads),
        tuple(not_equal),
    )


def datalog_form(name: str, vocab: Vocab) -> DatalogRule:
    """The datalog form of one Table-5 rule, with constants resolved."""
    TYPE = vocab.type
    SCO = vocab.subClassOf
    SPO = vocab.subPropertyOf
    DOM = vocab.domain
    RNG = vocab.range
    SAME = vocab.sameAs
    EQC = vocab.equivalentClass
    EQP = vocab.equivalentProperty
    INV = vocab.inverseOf

    forms: Dict[str, DatalogRule] = {
        "CAX-EQC1": _r(
            "CAX-EQC1",
            [("?c1", EQC, "?c2"), ("?x", TYPE, "?c1")],
            [("?x", TYPE, "?c2")],
        ),
        "CAX-EQC2": _r(
            "CAX-EQC2",
            [("?c1", EQC, "?c2"), ("?x", TYPE, "?c2")],
            [("?x", TYPE, "?c1")],
        ),
        "CAX-SCO": _r(
            "CAX-SCO",
            [("?c1", SCO, "?c2"), ("?x", TYPE, "?c1")],
            [("?x", TYPE, "?c2")],
        ),
        "EQ-REP-O": _r(
            "EQ-REP-O",
            [("?o1", SAME, "?o2"), ("?s", "?p", "?o2")],
            [("?s", "?p", "?o1")],
        ),
        "EQ-REP-P": _r(
            "EQ-REP-P",
            [("?p1", SAME, "?p2"), ("?s", "?p2", "?o")],
            [("?s", "?p1", "?o")],
        ),
        "EQ-REP-S": _r(
            "EQ-REP-S",
            [("?s1", SAME, "?s2"), ("?s2", "?p", "?o")],
            [("?s1", "?p", "?o")],
        ),
        "EQ-SYM": _r(
            "EQ-SYM", [("?x", SAME, "?y")], [("?y", SAME, "?x")]
        ),
        "EQ-TRANS": _r(
            "EQ-TRANS",
            [("?x", SAME, "?y"), ("?y", SAME, "?z")],
            [("?x", SAME, "?z")],
        ),
        "PRP-DOM": _r(
            "PRP-DOM",
            [("?p", DOM, "?c"), ("?x", "?p", "?y")],
            [("?x", TYPE, "?c")],
        ),
        "PRP-EQP1": _r(
            "PRP-EQP1",
            [("?p1", EQP, "?p2"), ("?x", "?p1", "?y")],
            [("?x", "?p2", "?y")],
        ),
        "PRP-EQP2": _r(
            "PRP-EQP2",
            [("?p1", EQP, "?p2"), ("?x", "?p2", "?y")],
            [("?x", "?p1", "?y")],
        ),
        "PRP-FP": _r(
            "PRP-FP",
            [
                ("?p", TYPE, vocab.FunctionalProperty),
                ("?x", "?p", "?y1"),
                ("?x", "?p", "?y2"),
            ],
            [("?y1", SAME, "?y2")],
            not_equal=[("?y1", "?y2")],
        ),
        "PRP-IFP": _r(
            "PRP-IFP",
            [
                ("?p", TYPE, vocab.InverseFunctionalProperty),
                ("?x1", "?p", "?y"),
                ("?x2", "?p", "?y"),
            ],
            [("?x1", SAME, "?x2")],
            not_equal=[("?x1", "?x2")],
        ),
        "PRP-INV1": _r(
            "PRP-INV1",
            [("?p1", INV, "?p2"), ("?x", "?p1", "?y")],
            [("?y", "?p2", "?x")],
        ),
        "PRP-INV2": _r(
            "PRP-INV2",
            [("?p1", INV, "?p2"), ("?x", "?p2", "?y")],
            [("?y", "?p1", "?x")],
        ),
        "PRP-RNG": _r(
            "PRP-RNG",
            [("?p", RNG, "?c"), ("?x", "?p", "?y")],
            [("?y", TYPE, "?c")],
        ),
        "PRP-SPO1": _r(
            "PRP-SPO1",
            [("?p1", SPO, "?p2"), ("?x", "?p1", "?y")],
            [("?x", "?p2", "?y")],
        ),
        "PRP-SYMP": _r(
            "PRP-SYMP",
            [("?p", TYPE, vocab.SymmetricProperty), ("?x", "?p", "?y")],
            [("?y", "?p", "?x")],
        ),
        "PRP-TRP": _r(
            "PRP-TRP",
            [
                ("?p", TYPE, vocab.TransitiveProperty),
                ("?x", "?p", "?y"),
                ("?y", "?p", "?z"),
            ],
            [("?x", "?p", "?z")],
        ),
        "SCM-DOM1": _r(
            "SCM-DOM1",
            [("?p", DOM, "?c1"), ("?c1", SCO, "?c2")],
            [("?p", DOM, "?c2")],
        ),
        "SCM-DOM2": _r(
            "SCM-DOM2",
            [("?p2", DOM, "?c"), ("?p1", SPO, "?p2")],
            [("?p1", DOM, "?c")],
        ),
        "SCM-EQC1": _r(
            "SCM-EQC1",
            [("?c1", EQC, "?c2")],
            [("?c1", SCO, "?c2"), ("?c2", SCO, "?c1")],
        ),
        "SCM-EQC2": _r(
            "SCM-EQC2",
            [("?c1", SCO, "?c2"), ("?c2", SCO, "?c1")],
            [("?c1", EQC, "?c2")],
        ),
        "SCM-EQP1": _r(
            "SCM-EQP1",
            [("?p1", EQP, "?p2")],
            [("?p1", SPO, "?p2"), ("?p2", SPO, "?p1")],
        ),
        "SCM-EQP2": _r(
            "SCM-EQP2",
            [("?p1", SPO, "?p2"), ("?p2", SPO, "?p1")],
            [("?p1", EQP, "?p2")],
        ),
        "SCM-RNG1": _r(
            "SCM-RNG1",
            [("?p", RNG, "?c1"), ("?c1", SCO, "?c2")],
            [("?p", RNG, "?c2")],
        ),
        "SCM-RNG2": _r(
            "SCM-RNG2",
            [("?p2", RNG, "?c"), ("?p1", SPO, "?p2")],
            [("?p1", RNG, "?c")],
        ),
        "SCM-SCO": _r(
            "SCM-SCO",
            [("?c1", SCO, "?c2"), ("?c2", SCO, "?c3")],
            [("?c1", SCO, "?c3")],
        ),
        "SCM-SPO": _r(
            "SCM-SPO",
            [("?p1", SPO, "?p2"), ("?p2", SPO, "?p3")],
            [("?p1", SPO, "?p3")],
        ),
        "SCM-CLS": _r(
            "SCM-CLS",
            [("?c", TYPE, vocab.owlClass)],
            [
                ("?c", SCO, "?c"),
                ("?c", EQC, "?c"),
                ("?c", SCO, vocab.Thing),
                (vocab.Nothing, SCO, "?c"),
            ],
        ),
        "SCM-DP": _r(
            "SCM-DP",
            [("?p", TYPE, vocab.DatatypeProperty)],
            [("?p", SPO, "?p"), ("?p", EQP, "?p")],
        ),
        "SCM-OP": _r(
            "SCM-OP",
            [("?p", TYPE, vocab.ObjectProperty)],
            [("?p", SPO, "?p"), ("?p", EQP, "?p")],
        ),
        "RDFS4": _r(
            "RDFS4",
            [("?x", "?p", "?y")],
            [("?x", TYPE, vocab.Resource), ("?y", TYPE, vocab.Resource)],
        ),
        "RDFS8": _r(
            "RDFS8",
            [("?x", TYPE, vocab.rdfsClass)],
            [("?x", SCO, vocab.Resource)],
        ),
        "RDFS12": _r(
            "RDFS12",
            [("?x", TYPE, vocab.ContainerMembershipProperty)],
            [("?x", SPO, vocab.member)],
        ),
        "RDFS13": _r(
            "RDFS13",
            [("?x", TYPE, vocab.Datatype)],
            [("?x", SCO, vocab.Literal)],
        ),
        "RDFS6": _r(
            "RDFS6",
            [("?x", TYPE, vocab.Property)],
            [("?x", SPO, "?x")],
        ),
        "RDFS10": _r(
            "RDFS10",
            [("?x", TYPE, vocab.rdfsClass)],
            [("?x", SCO, "?x")],
        ),
    }
    return forms[name]


def datalog_ruleset(names: Sequence[str], vocab: Vocab) -> List[DatalogRule]:
    """Datalog forms of many rules (order preserved)."""
    return [datalog_form(name, vocab) for name in names]


def substitute(atom: Atom, bindings: Dict[str, int]) -> Atom:
    """Apply variable bindings to an atom (unbound vars remain)."""
    def resolve(term: TermSpec) -> TermSpec:
        if isinstance(term, str):
            return bindings.get(term, term)
        return term

    return Atom(resolve(atom.s), resolve(atom.p), resolve(atom.o))


def match_atom(
    atom: Atom, fact: EncodedTriple, bindings: Dict[str, int]
) -> Optional[Dict[str, int]]:
    """Unify an atom with a ground fact under existing bindings.

    Returns the extended bindings, or ``None`` on mismatch.  Repeated
    variables inside an atom (e.g. RDFS6's reflexive head) unify.
    """
    new_bindings = bindings
    extended = False
    for term, value in zip(atom.positions(), fact):
        if isinstance(term, str):
            bound = new_bindings.get(term)
            if bound is None:
                if not extended:
                    new_bindings = dict(new_bindings)
                    extended = True
                new_bindings[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    return new_bindings
