"""NumPy kernel backend: vectorized pair-array primitives.

Same semantics as :mod:`repro.kernels.python_backend`, executed as
whole-array NumPy operations over ``int64`` vectors:

* sort+dedup — ``np.lexsort`` on the (object, subject) key pair
  followed by a boundary-mask dedup (no second sort);
* Figure-5 merge — row membership via ``np.searchsorted`` on a
  structured ⟨s, o⟩ row view (exact for the full int64 range — no
  lossy composite-key packing), then a stable timsort of the
  concatenated runs, which is linear on two sorted inputs;
* ⟨o, s⟩ view — one lexsort of the swapped components;
* merge-join — group boundaries from boundary masks,
  ``np.intersect1d`` on the distinct keys, and the per-key cross
  products materialized with the repeat/offset trick (no Python-level
  loop over matches).

The dictionary's dense flat-int encoding (ids are small consecutive
ints) is what makes the store's pair arrays directly usable as NumPy
vectors; ``array('q')`` inputs are adopted zero-copy through the buffer
protocol.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence, Tuple

import numpy as np

from ..sorting.counting import SortingError
from .base import KernelBackend

INT64 = np.int64

#: Structured dtype giving lexicographic row order on ⟨even, odd⟩ —
#: used for exact row-wise searchsorted/merge without packing two
#: int64s into one key.
PAIR_DTYPE = np.dtype([("s", "<i8"), ("o", "<i8")])


#: A component packs when its *range* (max − min) fits in 32 bits: the
#: pair is rebased to its component minima and packed into one uint64
#: key (((even − e₀) << 32) | (odd − o₀)), whose natural order equals
#: the lexicographic pair order.  Rebasing matters: the dictionary's
#: dense split numbering clusters property ids just below and resource
#: ids just above 2³², so absolute values exceed 32 bits on every real
#: workload while the *spread* stays tiny.  Ranges ≥ 2³² fall back to
#: the structured row path.
PACK_LIMIT = 1 << 32

_SHIFT = np.uint64(32)
_LOW_MASK = np.uint64(PACK_LIMIT - 1)


def _pack_bases(evens: np.ndarray, odds: np.ndarray):
    """(e₀, o₀) rebase offsets for one array, or None if out of range."""
    e_min, e_max = int(evens.min()), int(evens.max())
    o_min, o_max = int(odds.min()), int(odds.max())
    if e_max - e_min >= PACK_LIMIT or o_max - o_min >= PACK_LIMIT:
        return None
    return e_min, o_min


def _pack_rebased(
    evens: np.ndarray, odds: np.ndarray, e_base: int, o_base: int
) -> np.ndarray:
    return ((evens - e_base).astype(np.uint64) << _SHIFT) | (
        odds - o_base
    ).astype(np.uint64)


def _pack(evens: np.ndarray, odds: np.ndarray):
    """(packed keys, e₀, o₀) for one array, or None when unpackable."""
    if evens.size == 0:
        return np.empty(0, dtype=np.uint64), 0, 0
    bases = _pack_bases(evens, odds)
    if bases is None:
        return None
    return _pack_rebased(evens, odds, *bases), bases[0], bases[1]


def _pack_joint(a: np.ndarray, b: np.ndarray):
    """Pack two flat pair arrays against shared rebase offsets.

    Shared offsets keep the two key sets mutually comparable (merge and
    intersection need one total order across both inputs).  Returns
    (packed_a, packed_b, e₀, o₀) or None.
    """
    e_min = min(int(a[0::2].min()), int(b[0::2].min()))
    e_max = max(int(a[0::2].max()), int(b[0::2].max()))
    o_min = min(int(a[1::2].min()), int(b[1::2].min()))
    o_max = max(int(a[1::2].max()), int(b[1::2].max()))
    if e_max - e_min >= PACK_LIMIT or o_max - o_min >= PACK_LIMIT:
        return None
    return (
        _pack_rebased(a[0::2], a[1::2], e_min, o_min),
        _pack_rebased(b[0::2], b[1::2], e_min, o_min),
        e_min,
        o_min,
    )


def _unpack(packed: np.ndarray, e_base: int, o_base: int) -> np.ndarray:
    """Packed uint64 keys → flat int64 pair array (offsets restored)."""
    out = np.empty(2 * packed.size, dtype=INT64)
    out[0::2] = (packed >> _SHIFT).astype(INT64)
    out[0::2] += e_base
    out[1::2] = (packed & _LOW_MASK).astype(INT64)
    out[1::2] += o_base
    return out


def _rows(flat: np.ndarray) -> np.ndarray:
    """Structured row view of a flat pair array (zero-copy)."""
    return np.ascontiguousarray(flat).reshape(-1, 2).view(PAIR_DTYPE).ravel()


def _interleave(evens: np.ndarray, odds: np.ndarray) -> np.ndarray:
    out = np.empty(2 * evens.size, dtype=INT64)
    out[0::2] = evens
    out[1::2] = odds
    return out


def _group_starts(keys: np.ndarray) -> np.ndarray:
    """Indices where a new key run begins in a sorted key vector."""
    mask = np.empty(keys.size, dtype=bool)
    mask[0] = True
    np.not_equal(keys[1:], keys[:-1], out=mask[1:])
    return np.flatnonzero(mask)


class NumpyKernels(KernelBackend):
    """Vectorized ``int64`` ndarray kernels (see module docstring)."""

    name = "numpy"

    # -- representation -------------------------------------------------
    def asarray(self, flat):
        if isinstance(flat, np.ndarray):
            if flat.dtype == INT64 and flat.ndim == 1:
                return flat
            return np.ascontiguousarray(flat, dtype=INT64).ravel()
        if isinstance(flat, array) and flat.typecode == "q":
            if not len(flat):
                return np.empty(0, dtype=INT64)
            # Zero-copy adoption via the buffer protocol; callers treat
            # kernel inputs as read-only, so aliasing is safe.
            return np.frombuffer(flat, dtype=INT64)
        if isinstance(flat, memoryview):
            if flat.nbytes == 0:
                return np.empty(0, dtype=INT64)
            return np.frombuffer(flat, dtype=INT64)
        return np.asarray(list(flat), dtype=INT64)

    def empty(self):
        return np.empty(0, dtype=INT64)

    def copy_flat(self, flat):
        return np.array(self.asarray(flat), dtype=INT64)

    def concat(self, chunks: Sequence):
        parts = [self.asarray(chunk) for chunk in chunks if len(chunk)]
        if not parts:
            return self.empty()
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def from_buffer(self, buffer, n_values: int, *, offset: int = 0):
        # Zero-copy adoption of a shared-memory segment; the ndarray
        # aliases the buffer, which the caller keeps alive.
        return np.frombuffer(
            buffer, dtype=INT64, count=n_values, offset=8 * offset
        )

    # -- sorting & the Figure-5 merge -----------------------------------
    def sort_pairs(self, flat, *, dedup: bool = True, algorithm: str = "auto"):
        # `algorithm` picks among the scalar sorts; the vectorized sort
        # has a single implementation, so it is accepted and ignored.
        a = self.asarray(flat)
        if a.size % 2:
            raise SortingError(
                f"pair array must have even length, got {a.size}"
            )
        if a.size == 0:
            return self.empty()
        evens = a[0::2]
        odds = a[1::2]
        packed_bases = _pack(evens, odds)
        if packed_bases is not None:
            packed, e_base, o_base = packed_bases
            packed.sort()
            if dedup and packed.size > 1:
                keep = np.empty(packed.size, dtype=bool)
                keep[0] = True
                np.not_equal(packed[1:], packed[:-1], out=keep[1:])
                if not keep.all():
                    packed = packed[keep]
            return _unpack(packed, e_base, o_base)
        order = np.lexsort((odds, evens))
        evens = evens[order]
        odds = odds[order]
        if dedup and evens.size > 1:
            keep = np.empty(evens.size, dtype=bool)
            keep[0] = True
            np.not_equal(evens[1:], evens[:-1], out=keep[1:])
            np.logical_or(keep[1:], odds[1:] != odds[:-1], out=keep[1:])
            if not keep.all():
                evens = evens[keep]
                odds = odds[keep]
        return _interleave(evens, odds)

    def merge_new(self, main, inferred) -> Tuple[np.ndarray, np.ndarray]:
        m = self.asarray(main)
        f = self.asarray(inferred)
        if f.size == 0:
            return m, self.empty()
        if m.size == 0:
            fresh = np.array(f, dtype=INT64)
            return fresh, np.array(f, dtype=INT64)
        joint = _pack_joint(m, f)
        if joint is not None:
            main_keys, inf_keys, e_base, o_base = joint
        else:
            main_keys = _rows(m)
            inf_keys = _rows(f)
        positions = np.searchsorted(main_keys, inf_keys)
        clipped = np.minimum(positions, main_keys.size - 1)
        is_new = (positions == main_keys.size) | (main_keys[clipped] != inf_keys)
        if not is_new.any():
            return m, self.empty()
        new_keys = inf_keys[is_new]
        # Stable timsort over two concatenated sorted runs is O(n + m).
        merged_keys = np.sort(
            np.concatenate([main_keys, new_keys]), kind="stable"
        )
        if merged_keys.dtype == np.uint64:
            return (
                _unpack(merged_keys, e_base, o_base),
                _unpack(new_keys, e_base, o_base),
            )
        merged = np.ascontiguousarray(merged_keys.view(INT64))
        new = np.ascontiguousarray(new_keys.view(INT64))
        return merged, new

    # -- views ----------------------------------------------------------
    def swap(self, flat):
        a = self.asarray(flat)
        return _interleave(a[1::2], a[0::2])

    def os_view(self, sorted_pairs, *, algorithm: str = "auto"):
        a = self.asarray(sorted_pairs)
        if a.size == 0:
            return self.empty()
        subjects = a[0::2]
        objects = a[1::2]
        packed_bases = _pack(objects, subjects)
        if packed_bases is not None:
            packed, o_base, s_base = packed_bases
            packed.sort()
            return _unpack(packed, o_base, s_base)
        order = np.lexsort((subjects, objects))
        return _interleave(objects[order], subjects[order])

    # -- join primitives ------------------------------------------------
    def merge_join(self, view1, view2, *, swap: bool = False):
        a = self.asarray(view1)
        b = self.asarray(view2)
        if a.size == 0 or b.size == 0:
            return self.empty()
        keys1 = a[0::2]
        rest1 = a[1::2]
        keys2 = b[0::2]
        rest2 = b[1::2]
        starts1 = _group_starts(keys1)
        starts2 = _group_starts(keys2)
        common, g1, g2 = np.intersect1d(
            keys1[starts1], keys2[starts2],
            assume_unique=True, return_indices=True,
        )
        if common.size == 0:
            return self.empty()
        counts1 = np.diff(np.append(starts1, keys1.size))[g1]
        counts2 = np.diff(np.append(starts2, keys2.size))[g2]
        sizes = counts1 * counts2
        total = int(sizes.sum())
        group = np.repeat(np.arange(common.size), sizes)
        within = np.arange(total, dtype=INT64) - np.repeat(
            np.cumsum(sizes) - sizes, sizes
        )
        left = rest1[starts1[g1][group] + within // counts2[group]]
        right = rest2[starts2[g2][group] + within % counts2[group]]
        if swap:
            return _interleave(right, left)
        return _interleave(left, right)

    def intersect(self, view1, view2):
        a = self.asarray(view1)
        b = self.asarray(view2)
        if a.size == 0 or b.size == 0:
            return self.empty()
        joint = _pack_joint(a, b)
        if joint is not None:
            keys_a, keys_b, e_base, o_base = joint
        else:
            keys_a = _rows(a)
            keys_b = _rows(b)
        positions = np.searchsorted(keys_b, keys_a)
        clipped = np.minimum(positions, keys_b.size - 1)
        found = (positions < keys_b.size) & (keys_b[clipped] == keys_a)
        if keys_a.dtype == np.uint64:
            return _unpack(keys_a[found], e_base, o_base)
        return np.ascontiguousarray(keys_a[found].view(INT64))

    def consecutive_in_group(self, view):
        a = self.asarray(view)
        keys = a[0::2]
        values = a[1::2]
        if keys.size < 2:
            return self.empty()
        mask = (keys[1:] == keys[:-1]) & (values[1:] != values[:-1])
        return _interleave(values[:-1][mask], values[1:][mask])

    # -- scans & lookups ------------------------------------------------
    def distinct_evens(self, sorted_flat) -> Sequence[int]:
        a = self.asarray(sorted_flat)
        if a.size == 0:
            return np.empty(0, dtype=INT64)
        keys = a[0::2]
        return keys[_group_starts(keys)]

    def pair_with_constant(
        self, values: Iterable[int], constant: int, *, constant_as_object: bool = True
    ):
        vals = (
            values
            if isinstance(values, np.ndarray)
            else np.asarray(list(values), dtype=INT64)
        )
        if vals.size == 0:
            return self.empty()
        const = np.full(vals.size, constant, dtype=INT64)
        if constant_as_object:
            return _interleave(vals, const)
        return _interleave(const, vals)

    def key_slice(self, sorted_flat, key: int) -> Tuple[int, int]:
        a = self.asarray(sorted_flat)
        evens = a[0::2]
        start = int(np.searchsorted(evens, key, side="left"))
        end = int(np.searchsorted(evens, key, side="right"))
        return start, end

    def key_lower_bound(self, sorted_flat, key: int) -> int:
        a = self.asarray(sorted_flat)
        return int(np.searchsorted(a[0::2], key, side="left"))

    def select_in_ranges(self, sorted_values, ranges) -> Sequence[int]:
        values = (
            sorted_values
            if isinstance(sorted_values, np.ndarray)
            else np.asarray(list(sorted_values), dtype=INT64)
        )
        if values.size == 0:
            return values
        bounds = list(ranges)
        if not bounds:
            return values[:0]
        lows = np.asarray([low for low, _ in bounds], dtype=INT64)
        highs = np.asarray([high for _, high in bounds], dtype=INT64)
        starts = np.searchsorted(values, lows, side="left")
        ends = np.searchsorted(values, highs, side="right")
        chunks = [values[s:e] for s, e in zip(starts, ends) if e > s]
        if not chunks:
            return values[:0]
        return np.concatenate(chunks)


#: Shared stateless instance.
NUMPY_KERNELS = NumpyKernels()
