"""Kernel backend interface: the pair-array hot-path primitives.

Every cache-friendly pass Inferray makes over the vertical store —
sort+dedup commits (Algorithm 2 / §5), the Figure-5 merge, the lazily
cached ⟨o, s⟩ views and the sort-merge joins of rule execution (§4.4) —
is a small set of operations over flat 64-bit pair arrays (even index =
key, odd index = companion).  A :class:`KernelBackend` bundles one
implementation of those operations, so the store and the rule executors
are written once against this interface and the execution substrate is
swappable:

* ``python`` — the reference implementation, interpreted loops over
  ``array('q')`` (see :mod:`repro.kernels.python_backend`); always
  available, and the substrate on which the paper's counting/MSD-radix
  operating-range dispatch is meaningful.
* ``numpy`` — vectorized kernels over ``int64`` ndarrays
  (:mod:`repro.kernels.numpy_backend`); the flat-int encoding of the
  dictionary makes the pair arrays drop-in compatible with NumPy
  vectors, so every pass runs at C speed.
* ``compressed`` — delta-encoded sorted runs
  (:mod:`repro.kernels.compressed_backend`); committed columns live as
  frame-of-reference zig-zag delta blocks, every primitive streams
  block-by-block, and identical blocks are shared across versions and
  snapshots.  Trades decode time for a ~4–8× smaller resident closure.

Backends are semantically interchangeable: for any input, every kernel
must return the same *values* regardless of backend (the differential
suite under ``tests/kernels/`` enforces this).  The concrete flat-array
type differs (``array('q')`` vs ``numpy.ndarray``); both support
``len``, indexing, slicing and iteration, which is all the generic store
code relies on.

All inputs marked *sorted* mean sorted lexicographically on
(even, odd) components; *sorted-unique* additionally means free of
duplicate pairs.  Kernels never mutate their inputs.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple


class KernelBackend:
    """Abstract pair-array kernel bundle (see module docstring)."""

    #: Backend identifier ('python', 'numpy'); shown by the CLI and the
    #: benchmark reports.
    name: str = "abstract"

    # -- representation -------------------------------------------------
    def asarray(self, flat):
        """Coerce a flat pair sequence to this backend's native type.

        Zero-copy when the input already is native; the result must be
        treated as read-only (it may alias the input).
        """
        raise NotImplementedError

    def empty(self):
        """A new empty native flat array."""
        raise NotImplementedError

    def copy_flat(self, flat):
        """An independent native copy of a flat array."""
        raise NotImplementedError

    def concat(self, chunks: Sequence) -> object:
        """Concatenate flat chunks (possibly of foreign types) natively."""
        raise NotImplementedError

    def flat_nbytes(self, flat, seen=None) -> int:
        """Resident bytes held by a flat array.

        The memory-accounting hook behind ``PropertyTable.memory_bytes``
        and the memsim live-Store probe.  ``seen`` (a mutable set, when
        provided) deduplicates storage shared across versions/snapshots
        by object identity: an array (or, for the compressed backend, an
        encoded block) already accounted for contributes zero.
        """
        if seen is not None:
            key = id(flat)
            if key in seen:
                return 0
            seen.add(key)
        return 8 * len(flat)

    def from_buffer(self, buffer, n_values: int, *, offset: int = 0):
        """A zero-copy read-only flat view over ``n_values`` int64 values.

        ``buffer`` is any object exposing the buffer protocol over raw
        host-order int64 data (the process-parallel executor hands in
        ``multiprocessing.shared_memory`` buffers); ``offset`` counts
        *values*, not bytes.  The view aliases the buffer — it must not
        be mutated and must not outlive it.
        """
        raise NotImplementedError

    # -- sorting & the Figure-5 merge -----------------------------------
    def sort_pairs(self, flat, *, dedup: bool = True, algorithm: str = "auto"):
        """Sort a flat pair array on (even, odd); optionally deduplicate.

        ``algorithm`` selects the scalar sort family ('auto' applies the
        paper's Table-1 operating ranges); vectorized backends may
        ignore it.
        """
        raise NotImplementedError

    def merge_new(self, main, inferred) -> Tuple[object, object]:
        """Figure-5 update: returns ``(main ∪ inferred, inferred ∖ main)``.

        Both inputs are sorted-unique; both outputs are sorted-unique.
        The first return value replaces the main table, the second is
        the genuinely-new delta that seeds the next iteration.
        """
        raise NotImplementedError

    # -- views ----------------------------------------------------------
    def swap(self, flat):
        """Swap even/odd components of every pair (no re-sort)."""
        raise NotImplementedError

    def os_view(self, sorted_pairs, *, algorithm: str = "auto"):
        """The ⟨o, s⟩ permutation of a sorted ⟨s, o⟩ array, re-sorted."""
        raise NotImplementedError

    # -- join primitives (§4.4) -----------------------------------------
    def merge_join(self, view1, view2, *, swap: bool = False):
        """Sort-merge join keyed on the even components of both views.

        For every key present in both views, emits the cross product of
        the odd-position companions as flat ⟨rest1, rest2⟩ pairs
        (⟨rest2, rest1⟩ when ``swap``).  Inputs sorted on their even
        component.
        """
        raise NotImplementedError

    def intersect(self, view1, view2):
        """Pairs present in both sorted views, in view1 order."""
        raise NotImplementedError

    def consecutive_in_group(self, view):
        """⟨vᵢ₋₁, vᵢ⟩ for consecutive differing values within each
        equal-key run of a sorted view (the PRP-FP/IFP conflict scan)."""
        raise NotImplementedError

    # -- scans & lookups ------------------------------------------------
    def distinct_evens(self, sorted_flat) -> Sequence[int]:
        """Distinct even-position keys of a sorted flat array, in order."""
        raise NotImplementedError

    def pair_with_constant(
        self, values: Iterable[int], constant: int, *, constant_as_object: bool = True
    ):
        """Flat pairs ⟨v, c⟩ (or ⟨c, v⟩) for every v in ``values``."""
        raise NotImplementedError

    def key_slice(self, sorted_flat, key: int) -> Tuple[int, int]:
        """[start, end) pair-index range of rows whose even part == key."""
        raise NotImplementedError

    def key_lower_bound(self, sorted_flat, key: int) -> int:
        """First pair index whose even component is ``>= key``.

        Generic binary search over the flat layout; backends may
        override with a vectorized search.  Used by the intra-rule
        sharding to cut a sorted view at a key-range boundary.
        """
        low, high = 0, len(sorted_flat) // 2
        while low < high:
            mid = (low + high) // 2
            if sorted_flat[2 * mid] < key:
                low = mid + 1
            else:
                high = mid
        return low

    def select_in_ranges(self, sorted_values, ranges) -> Sequence[int]:
        """Values falling inside any of the inclusive ``[lo, hi]`` ranges.

        ``sorted_values`` is an ascending int sequence; ``ranges`` an
        iterable of ``(lo, hi)`` bounds, ascending and disjoint (the
        layout of ``IntervalSet.intervals()``).  Returns the matching
        values in ascending order.  Generic two-pointer/bisect sweep;
        backends may override with a vectorized search.  Used by the
        hybrid query rewrite to filter stored class/property candidates
        through an interval-encoded reach set.
        """
        out = []
        index, n_values = 0, len(sorted_values)
        for low, high in ranges:
            if index >= n_values:
                break
            # Binary-search forward to the first value >= low.
            lo_i, hi_i = index, n_values
            while lo_i < hi_i:
                mid = (lo_i + hi_i) // 2
                if sorted_values[mid] < low:
                    lo_i = mid + 1
                else:
                    hi_i = mid
            index = lo_i
            while index < n_values and sorted_values[index] <= high:
                out.append(sorted_values[index])
                index += 1
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name}>"
