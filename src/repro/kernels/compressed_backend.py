"""Compressed columnar kernel backend: delta-encoded sorted pair runs.

The third :class:`repro.kernels.base.KernelBackend`.  Committed pair
columns are stored as :class:`CompressedPairs` — a list of independent
*blocks* of up to :data:`BLOCK_PAIRS` pairs, each block delta-encoded
column-wise (frame-of-reference against the block's first pair,
zig-zag-coded deltas packed at the narrowest of 0/1/2/4/8 bytes per
column).  The dictionary's dense split numbering keeps deltas tiny, so
sorted instance tables compress to ~2–4 bytes/pair against the 16 bytes
of a flat int64 pair — the ≥4× resident-closure reduction of the
Fig-7/8 memory curves.

Design rules:

* **Block-by-block, never a full copy.**  Every primitive (the Figure-5
  merge, ⟨o, s⟩ view construction, merge-join/intersect/conflict scans)
  decompresses one bounded window at a time and re-encodes on the fly;
  transient memory is O(block + largest join key group), not O(table).
* **Delegated arithmetic.**  The actual math on a decompressed window
  runs on an *inner* backend — the vectorized NumPy kernels when
  importable, the pure-Python reference otherwise — so this module owns
  only the encoding and the streaming orchestration.
* **Structure sharing.**  Blocks are immutable byte strings; the merge
  reuses every block the delta does not touch by reference, so
  committed versions and snapshots share identical runs.  The
  :meth:`KernelBackend.flat_nbytes` accounting hook deduplicates shared
  blocks by identity.
* **Raw in, compressed out.**  Transient rule emissions stay in the
  inner backend's native flat type; only commit-path outputs
  (``sort_pairs``, ``merge_new``'s merged table, ``os_view``,
  ``asarray``) compress.

Byte order is the host's, matching the repo-wide assumption for the
shared-memory pair buffers (little-endian on every supported platform).
"""

from __future__ import annotations

import struct
from array import array
from bisect import bisect_right
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .base import KernelBackend
from .python_backend import PYTHON_KERNELS

try:  # pragma: no cover - exercised through both CI matrix legs
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Pairs per compression block.  Chunk boundaries elsewhere (the
#: InferredBuffers absorb path, shared-memory export) align with these
#: blocks because blocks are the unit of sharing and of decode.
BLOCK_PAIRS = 1024

#: Per-block header: n_pairs, width_s, width_o, first_s, first_o,
#: last_s, last_o.  The first/last anchors make bisects and key-chunk
#: grouping possible without decoding.
_HEADER = struct.Struct("<HBBqqqq")

#: Serialized-stream magic.  The leading 0xff byte makes the first
#: int64 of a serialized stream negative, which no dictionary id ever
#: is — ``from_buffer`` uses this to sniff compressed vs raw segments.
_MAGIC = b"\xffCRPR01\n"

_U64 = (1 << 64) - 1

_WIDTHS = (1, 2, 4, 8)

# array typecodes by itemsize for the pure-Python codec (platform
# itemsizes vary for 'I'/'L', so probe instead of hard-coding).
_CODE_FOR_WIDTH = {}
for _code in "BHILQ":
    _CODE_FOR_WIDTH.setdefault(array(_code).itemsize, _code)
del _code


def _width_for(max_value: int) -> int:
    for width in _WIDTHS:
        if max_value < 1 << (8 * width):
            return width
    raise ValueError(f"delta out of uint64 range: {max_value}")


class _PythonCodec:
    """Block encode/decode over ``array('q')`` (reference semantics)."""

    name = "python"

    def encode_block(self, flat, start: int, n_pairs: int) -> bytes:
        first_s = int(flat[2 * start])
        first_o = int(flat[2 * start + 1])
        last_s = int(flat[2 * (start + n_pairs) - 2])
        last_o = int(flat[2 * (start + n_pairs) - 1])
        zs: List[int] = []
        zo: List[int] = []
        max_s = max_o = 0
        prev_s, prev_o = first_s, first_o
        for i in range(start + 1, start + n_pairs):
            s = int(flat[2 * i])
            o = int(flat[2 * i + 1])
            d = s - prev_s
            z = ((d << 1) ^ (d >> 63)) & _U64
            zs.append(z)
            if z > max_s:
                max_s = z
            d = o - prev_o
            z = ((d << 1) ^ (d >> 63)) & _U64
            zo.append(z)
            if z > max_o:
                max_o = z
            prev_s, prev_o = s, o
        width_s = 0 if max_s == 0 else _width_for(max_s)
        width_o = 0 if max_o == 0 else _width_for(max_o)
        parts = [
            _HEADER.pack(
                n_pairs, width_s, width_o, first_s, first_o, last_s, last_o
            )
        ]
        if width_s:
            parts.append(array(_CODE_FOR_WIDTH[width_s], zs).tobytes())
        if width_o:
            parts.append(array(_CODE_FOR_WIDTH[width_o], zo).tobytes())
        return b"".join(parts)

    def decode_block(self, block) -> array:
        n_pairs, width_s, width_o, first_s, first_o, _, _ = _HEADER.unpack_from(
            block
        )
        out = array("q", bytes(16 * n_pairs))
        out[0] = first_s
        out[1] = first_o
        offset = _HEADER.size
        n_deltas = n_pairs - 1
        value = first_s
        if width_s:
            deltas = array(_CODE_FOR_WIDTH[width_s])
            deltas.frombytes(bytes(block[offset: offset + width_s * n_deltas]))
            offset += width_s * n_deltas
            for i, z in enumerate(deltas, start=1):
                value += (z >> 1) ^ -(z & 1)
                out[2 * i] = value
        else:
            for i in range(1, n_pairs):
                out[2 * i] = value
        value = first_o
        if width_o:
            deltas = array(_CODE_FOR_WIDTH[width_o])
            deltas.frombytes(bytes(block[offset: offset + width_o * n_deltas]))
            for i, z in enumerate(deltas, start=1):
                value += (z >> 1) ^ -(z & 1)
                out[2 * i + 1] = value
        else:
            for i in range(1, n_pairs):
                out[2 * i + 1] = value
        return out


class _NumpyCodec:
    """Vectorized block encode/decode over int64 ndarrays."""

    name = "numpy"

    def encode_block(self, flat, start: int, n_pairs: int) -> bytes:
        np = _np
        window = flat[2 * start: 2 * (start + n_pairs)]
        evens = window[0::2]
        odds = window[1::2]
        header_tail = (
            int(evens[0]), int(odds[0]), int(evens[-1]), int(odds[-1])
        )
        parts = [b"", b""]
        widths = [0, 0]
        for column, deltas in enumerate((np.diff(evens), np.diff(odds))):
            if deltas.size == 0:
                continue
            zig = (deltas.astype(np.uint64) << np.uint64(1)) ^ (
                deltas >> np.int64(63)
            ).astype(np.uint64)
            top = int(zig.max())
            if top == 0:
                continue
            width = _width_for(top)
            widths[column] = width
            parts[column] = zig.astype(f"<u{width}").tobytes()
        return (
            _HEADER.pack(n_pairs, widths[0], widths[1], *header_tail)
            + parts[0]
            + parts[1]
        )

    def decode_block(self, block):
        np = _np
        n_pairs, width_s, width_o, first_s, first_o, _, _ = _HEADER.unpack_from(
            block
        )
        out = np.empty(2 * n_pairs, dtype=np.int64)
        offset = _HEADER.size
        n_deltas = n_pairs - 1
        for column, (width, first) in enumerate(
            ((width_s, first_s), (width_o, first_o))
        ):
            target = out[column::2]
            if width:
                zig = np.frombuffer(
                    block, dtype=f"<u{width}", count=n_deltas, offset=offset
                ).astype(np.uint64)
                offset += width * n_deltas
                deltas = ((zig >> np.uint64(1)) ^ (
                    np.uint64(0) - (zig & np.uint64(1))
                )).view(np.int64)
                target[0] = first
                np.cumsum(deltas, out=target[1:])
                target[1:] += first
            else:
                target[:] = first
        return out


def _pick_codec(inner: KernelBackend):
    if inner.name == "numpy" and _np is not None:
        return _NumpyCodec()
    return _PythonCodec()


def _pair_bound(flat, s: int, o: int, *, right: bool = False) -> int:
    """Pair index of the first pair ``>= (s, o)`` (``>`` when right)."""
    low, high = 0, len(flat) // 2
    key = (s, o)
    while low < high:
        mid = (low + high) // 2
        row = (int(flat[2 * mid]), int(flat[2 * mid + 1]))
        if row < key or (right and row == key):
            low = mid + 1
        else:
            high = mid
    return low


class CompressedPairs:
    """An immutable flat pair array stored as delta-encoded blocks.

    Supports everything the generic store/rule code touches on a flat
    array — ``len``, integer indexing, contiguous slicing, iteration,
    ``tolist`` and ``tobytes`` — decoding one block at a time (with a
    one-block cache for the binary-search access patterns).
    """

    __slots__ = ("_blocks", "_anchors", "_cum", "_codec", "_cache")

    def __init__(self, blocks, anchors, cum, codec):
        self._blocks = blocks          # encoded block byte strings
        self._anchors = anchors        # (first_s, first_o, last_s, last_o)
        self._cum = cum                # cumulative pair counts, len n+1
        self._codec = codec
        self._cache: Tuple[int, Optional[object]] = (-1, None)

    # -- construction ---------------------------------------------------
    @classmethod
    def from_flat(cls, flat, codec) -> "CompressedPairs":
        if len(flat) % 2:
            raise ValueError(
                f"pair array must have even length, got {len(flat)}"
            )
        n_pairs = len(flat) // 2
        blocks: List[bytes] = []
        anchors: List[Tuple[int, int, int, int]] = []
        cum = [0]
        for start in range(0, n_pairs, BLOCK_PAIRS):
            count = min(BLOCK_PAIRS, n_pairs - start)
            block = codec.encode_block(flat, start, count)
            blocks.append(block)
            anchors.append(_anchor_of(block))
            cum.append(cum[-1] + count)
        return cls(blocks, anchors, cum, codec)

    # -- sequence protocol ----------------------------------------------
    @property
    def n_pairs(self) -> int:
        return self._cum[-1]

    def __len__(self) -> int:
        return 2 * self._cum[-1]

    def _decode(self, index: int):
        cached_index, cached = self._cache
        if cached_index == index:
            return cached
        flat = self._codec.decode_block(self._blocks[index])
        self._cache = (index, flat)
        return flat

    def __getitem__(self, index):
        if isinstance(index, slice):
            return self._slice(index)
        n_values = 2 * self._cum[-1]
        if index < 0:
            index += n_values
        if not 0 <= index < n_values:
            raise IndexError("CompressedPairs index out of range")
        pair_index, component = divmod(index, 2)
        block = bisect_right(self._cum, pair_index) - 1
        flat = self._decode(block)
        return int(flat[2 * (pair_index - self._cum[block]) + component])

    def _slice(self, index: slice):
        start, stop, step = index.indices(2 * self._cum[-1])
        if step != 1:
            raise ValueError(
                "CompressedPairs only supports contiguous slices"
            )
        if stop <= start:
            return self._codec_empty()
        first_block = bisect_right(self._cum, start // 2) - 1
        last_block = bisect_right(self._cum, (stop - 1) // 2) - 1
        parts = []
        for block in range(first_block, last_block + 1):
            flat = self._decode(block)
            lo = max(start - 2 * self._cum[block], 0)
            hi = min(stop - 2 * self._cum[block], len(flat))
            parts.append(flat[lo:hi] if (lo, hi) != (0, len(flat)) else flat)
        if len(parts) == 1:
            return parts[0]
        if self._codec.name == "numpy":
            return _np.concatenate(parts)
        out = array("q")
        for part in parts:
            out.extend(part)
        return out

    def _codec_empty(self):
        if self._codec.name == "numpy":
            return _np.empty(0, dtype=_np.int64)
        return array("q")

    def iter_block_arrays(self) -> Iterator[object]:
        """Decoded inner-native flat arrays, one block at a time."""
        for index in range(len(self._blocks)):
            yield self._decode(index)

    def __iter__(self):
        for flat in self.iter_block_arrays():
            for value in flat:
                yield int(value)

    def tolist(self) -> List[int]:
        out: List[int] = []
        for flat in self.iter_block_arrays():
            out.extend(int(value) for value in flat)
        return out

    def tobytes(self) -> bytes:
        """The *raw* host-order int64 image (decompressed copy)."""
        parts = []
        for flat in self.iter_block_arrays():
            parts.append(
                flat.tobytes() if not isinstance(flat, memoryview)
                else bytes(flat)
            )
        return b"".join(parts)

    # -- accounting & sharing -------------------------------------------
    def nbytes(self, seen: Optional[set] = None) -> int:
        """Resident encoded bytes; shared blocks counted once via ``seen``."""
        total = 0
        for block in self._blocks:
            if seen is not None:
                key = id(block)
                if key in seen:
                    continue
                seen.add(key)
            total += len(block)
        return total

    def block_ids(self) -> List[int]:
        """Identities of the encoded blocks (structure-sharing probes)."""
        return [id(block) for block in self._blocks]

    # -- serialization --------------------------------------------------
    def serialize(self) -> bytes:
        """Self-describing byte stream (shared memory / persistence)."""
        parts = [_MAGIC, struct.pack("<qq", self.n_pairs, len(self._blocks))]
        for block in self._blocks:
            parts.append(struct.pack("<q", len(block)))
            parts.append(bytes(block))
        return b"".join(parts)

    @classmethod
    def deserialize(cls, buffer, codec) -> "CompressedPairs":
        view = memoryview(buffer)
        if bytes(view[: len(_MAGIC)]) != _MAGIC:
            raise ValueError("not a serialized CompressedPairs stream")
        n_pairs, n_blocks = struct.unpack_from("<qq", view, len(_MAGIC))
        offset = len(_MAGIC) + 16
        blocks: List[bytes] = []
        anchors: List[Tuple[int, int, int, int]] = []
        cum = [0]
        for _ in range(n_blocks):
            (length,) = struct.unpack_from("<q", view, offset)
            offset += 8
            # Copy out of the backing buffer: encoded blocks are small
            # (that is the point), and owning them keeps block lifetime
            # independent of shared-memory segment teardown.
            block = bytes(view[offset: offset + length])
            offset += length
            blocks.append(block)
            anchors.append(_anchor_of(block))
            cum.append(cum[-1] + _HEADER.unpack_from(block)[0])
        if cum[-1] != n_pairs:
            raise ValueError(
                f"corrupt CompressedPairs stream: {cum[-1]} pairs decoded, "
                f"{n_pairs} declared"
            )
        return cls(blocks, anchors, cum, codec)

    def serialized_nbytes(self) -> int:
        return len(_MAGIC) + 16 + sum(8 + len(b) for b in self._blocks)

    def __reduce__(self):
        return (_unpickle, (self.serialize(), self._codec.name))

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<CompressedPairs pairs={self.n_pairs} "
            f"blocks={len(self._blocks)} bytes={self.nbytes()}>"
        )


def _anchor_of(block) -> Tuple[int, int, int, int]:
    header = _HEADER.unpack_from(block)
    return (header[3], header[4], header[5], header[6])


def _unpickle(payload: bytes, codec_name: str) -> CompressedPairs:
    codec = _NumpyCodec() if codec_name == "numpy" and _np is not None \
        else _PythonCodec()
    return CompressedPairs.deserialize(payload, codec)


class _BlockEncoder:
    """Accumulates pairs (inner-native flats) into encoded blocks."""

    def __init__(self, codec, inner: KernelBackend):
        self._codec = codec
        self._inner = inner
        self._blocks: List[bytes] = []
        self._anchors: List[Tuple[int, int, int, int]] = []
        self._cum = [0]
        self._pending = None  # inner-native flat, < BLOCK_PAIRS pairs

    def extend(self, flat) -> None:
        if not len(flat):
            return
        if self._pending is not None and len(self._pending):
            flat = self._inner.concat([self._pending, flat])
            self._pending = None
        n_pairs = len(flat) // 2
        start = 0
        while n_pairs - start >= BLOCK_PAIRS:
            self._emit(flat, start, BLOCK_PAIRS)
            start += BLOCK_PAIRS
        if start < n_pairs:
            self._pending = flat[2 * start:]

    def append_encoded(self, block, anchor, count: int) -> None:
        """Adopt an already-encoded block by reference (sharing)."""
        self._flush_pending()
        self._blocks.append(block)
        self._anchors.append(anchor)
        self._cum.append(self._cum[-1] + count)

    def _emit(self, flat, start: int, count: int) -> None:
        block = self._codec.encode_block(flat, start, count)
        self._blocks.append(block)
        self._anchors.append(_anchor_of(block))
        self._cum.append(self._cum[-1] + count)

    def _flush_pending(self) -> None:
        if self._pending is not None and len(self._pending):
            self._emit(self._pending, 0, len(self._pending) // 2)
        self._pending = None

    def finish(self) -> CompressedPairs:
        self._flush_pending()
        return CompressedPairs(
            self._blocks, self._anchors, self._cum, self._codec
        )


class CompressedKernels(KernelBackend):
    """Delta-block compressed kernels (see module docstring)."""

    name = "compressed"

    def __init__(self, inner: Optional[KernelBackend] = None):
        if inner is None:
            inner = PYTHON_KERNELS
        self._inner = inner
        self._codec = _pick_codec(inner)

    @property
    def inner_name(self) -> str:
        """The delegate backend doing the decompressed-window math."""
        return self._inner.name

    # -- representation -------------------------------------------------
    def asarray(self, flat):
        if isinstance(flat, CompressedPairs):
            return flat
        return CompressedPairs.from_flat(self._inner.asarray(flat),
                                         self._codec)

    def empty(self):
        return CompressedPairs([], [], [0], self._codec)

    def copy_flat(self, flat):
        if isinstance(flat, CompressedPairs):
            # Immutable: sharing *is* the copy (structure sharing).
            return flat
        return self._inner.copy_flat(flat)

    def concat(self, chunks: Sequence):
        parts = []
        for chunk in chunks:
            if isinstance(chunk, CompressedPairs):
                parts.extend(chunk.iter_block_arrays())
            elif len(chunk):
                parts.append(chunk)
        if not parts:
            return self._inner.empty()
        return self._inner.concat(parts)

    def from_buffer(self, buffer, n_values: int, *, offset: int = 0):
        view = memoryview(buffer)[8 * offset:]
        if bytes(view[: len(_MAGIC)]) == _MAGIC:
            pairs = CompressedPairs.deserialize(view, self._codec)
            if len(pairs) != n_values:
                raise ValueError(
                    f"compressed segment carries {len(pairs)} values, "
                    f"manifest says {n_values}"
                )
            return pairs
        # Raw int64 segment (e.g. worker output buffers): keep it a
        # zero-copy view; every primitive here accepts raw flats.
        return self._inner.from_buffer(buffer, n_values, offset=offset)

    # -- decompression helpers ------------------------------------------
    def _raw(self, flat):
        """A full inner-native image (only for *transient* inputs)."""
        if isinstance(flat, CompressedPairs):
            return self.concat([flat])
        return self._inner.asarray(flat)

    def _key_chunks(self, view) -> Iterator[object]:
        """Inner-native chunks; no even-key group spans two chunks."""
        if not isinstance(view, CompressedPairs):
            if len(view):
                yield self._inner.asarray(view)
            return
        pending = None
        n_blocks = len(view._blocks)
        for index in range(n_blocks):
            flat = view._decode(index)
            if pending is not None:
                flat = self._inner.concat([pending, flat])
                pending = None
            if index + 1 < n_blocks and \
                    view._anchors[index + 1][0] == int(flat[-2]):
                # The trailing key group continues into the next block:
                # hold the group back, emit the completed groups.
                cut = self._inner.key_lower_bound(flat, int(flat[-2]))
                if cut > 0:
                    yield flat[: 2 * cut]
                    pending = flat[2 * cut:]
                else:
                    pending = flat
            else:
                yield flat
        if pending is not None and len(pending):
            yield pending

    def _key_windows(self, view1, view2):
        """Chunk pairs whose key ranges overlap, each pair at most once."""
        stream1 = self._key_chunks(view1)
        stream2 = self._key_chunks(view2)
        chunk1 = next(stream1, None)
        chunk2 = next(stream2, None)
        while chunk1 is not None and chunk2 is not None:
            last1 = int(chunk1[-2])
            last2 = int(chunk2[-2])
            if last1 < int(chunk2[0]):
                chunk1 = next(stream1, None)
                continue
            if last2 < int(chunk1[0]):
                chunk2 = next(stream2, None)
                continue
            yield chunk1, chunk2
            if last1 <= last2:
                chunk1 = next(stream1, None)
            if last2 <= last1:
                chunk2 = next(stream2, None)

    # -- sorting & the Figure-5 merge -----------------------------------
    def sort_pairs(self, flat, *, dedup: bool = True, algorithm: str = "auto"):
        raw = self._raw(flat)
        sorted_flat = self._inner.sort_pairs(
            raw, dedup=dedup, algorithm=algorithm
        )
        return CompressedPairs.from_flat(sorted_flat, self._codec)

    def merge_new(self, main, inferred):
        inferred_raw = self._raw(inferred)
        if not len(inferred_raw):
            main_c = main if isinstance(main, CompressedPairs) \
                else self.asarray(main)
            return main_c, self._inner.empty()
        if not isinstance(main, CompressedPairs):
            main = self.asarray(main)
        if not len(main):
            fresh = CompressedPairs.from_flat(inferred_raw, self._codec)
            return fresh, inferred_raw
        # Partition the (sorted-unique) delta across the block starts so
        # untouched blocks are reused by reference.
        encoder = _BlockEncoder(self._codec, self._inner)
        new_parts = []
        n_blocks = len(main._blocks)
        lo = 0
        for index in range(n_blocks):
            if index + 1 < n_blocks:
                next_s, next_o = main._anchors[index + 1][0], \
                    main._anchors[index + 1][1]
                hi = _pair_bound(inferred_raw, next_s, next_o)
            else:
                hi = len(inferred_raw) // 2
            count = main._cum[index + 1] - main._cum[index]
            if lo == hi:
                encoder.append_encoded(
                    main._blocks[index], main._anchors[index], count
                )
            else:
                block_flat = main._decode(index)
                merged, new = self._inner.merge_new(
                    block_flat, inferred_raw[2 * lo: 2 * hi]
                )
                encoder.extend(merged)
                if len(new):
                    new_parts.append(new)
            lo = hi
        merged_c = encoder.finish()
        if not new_parts:
            return merged_c, self._inner.empty()
        return merged_c, self._inner.concat(new_parts)

    # -- views ----------------------------------------------------------
    def swap(self, flat):
        if isinstance(flat, CompressedPairs):
            parts = [
                self._inner.swap(block) for block in flat.iter_block_arrays()
            ]
            if not parts:
                return self._inner.empty()
            return self._inner.concat(parts)
        return self._inner.swap(flat)

    def os_view(self, sorted_pairs, *, algorithm: str = "auto"):
        if not isinstance(sorted_pairs, CompressedPairs):
            sorted_pairs = self.asarray(sorted_pairs)
        # Swap+sort each block into an independent sorted run, then fold
        # the runs pairwise with a streaming bounded-window merge.
        runs = [
            CompressedPairs.from_flat(
                self._inner.sort_pairs(
                    self._inner.swap(block), dedup=False, algorithm=algorithm
                ),
                self._codec,
            )
            for block in sorted_pairs.iter_block_arrays()
        ]
        if not runs:
            return self.empty()
        while len(runs) > 1:
            folded = [
                self._merge_runs(runs[i], runs[i + 1])
                for i in range(0, len(runs) - 1, 2)
            ]
            if len(runs) % 2:
                folded.append(runs[-1])
            runs = folded
        return runs[0]

    def _merge_runs(self, run1: CompressedPairs,
                    run2: CompressedPairs) -> CompressedPairs:
        if not len(run1):
            return run2
        if not len(run2):
            return run1
        encoder = _BlockEncoder(self._codec, self._inner)
        stream1 = run1.iter_block_arrays()
        stream2 = run2.iter_block_arrays()
        chunk1 = next(stream1, None)
        chunk2 = next(stream2, None)
        while chunk1 is not None and chunk2 is not None:
            last1 = (int(chunk1[-2]), int(chunk1[-1]))
            last2 = (int(chunk2[-2]), int(chunk2[-1]))
            if last1 <= last2:
                cut = _pair_bound(chunk2, last1[0], last1[1], right=True)
                encoder.extend(self._inner.sort_pairs(
                    self._inner.concat([chunk1, chunk2[: 2 * cut]]),
                    dedup=False,
                ))
                chunk2 = chunk2[2 * cut:] if cut else chunk2
                if not len(chunk2):
                    chunk2 = next(stream2, None)
                chunk1 = next(stream1, None)
            else:
                cut = _pair_bound(chunk1, last2[0], last2[1], right=True)
                encoder.extend(self._inner.sort_pairs(
                    self._inner.concat([chunk2, chunk1[: 2 * cut]]),
                    dedup=False,
                ))
                chunk1 = chunk1[2 * cut:] if cut else chunk1
                if not len(chunk1):
                    chunk1 = next(stream1, None)
                chunk2 = next(stream2, None)
        for chunk in ([chunk1] if chunk1 is not None else []):
            encoder.extend(chunk)
        for chunk in stream1:
            encoder.extend(chunk)
        for chunk in ([chunk2] if chunk2 is not None else []):
            encoder.extend(chunk)
        for chunk in stream2:
            encoder.extend(chunk)
        return encoder.finish()

    # -- join primitives ------------------------------------------------
    def merge_join(self, view1, view2, *, swap: bool = False):
        parts = [
            self._inner.merge_join(chunk1, chunk2, swap=swap)
            for chunk1, chunk2 in self._key_windows(view1, view2)
        ]
        parts = [part for part in parts if len(part)]
        if not parts:
            return self._inner.empty()
        return self._inner.concat(parts)

    def intersect(self, view1, view2):
        parts = [
            self._inner.intersect(chunk1, chunk2)
            for chunk1, chunk2 in self._key_windows(view1, view2)
        ]
        parts = [part for part in parts if len(part)]
        if not parts:
            return self._inner.empty()
        return self._inner.concat(parts)

    def consecutive_in_group(self, view):
        parts = [
            self._inner.consecutive_in_group(chunk)
            for chunk in self._key_chunks(view)
        ]
        parts = [part for part in parts if len(part)]
        if not parts:
            return self._inner.empty()
        return self._inner.concat(parts)

    # -- scans & lookups ------------------------------------------------
    def distinct_evens(self, sorted_flat) -> Sequence[int]:
        if not isinstance(sorted_flat, CompressedPairs):
            return self._inner.distinct_evens(sorted_flat)
        out: List[int] = []
        for block in sorted_flat.iter_block_arrays():
            for key in self._inner.distinct_evens(block):
                key = int(key)
                if not out or out[-1] != key:
                    out.append(key)
        return out

    def pair_with_constant(
        self, values: Iterable[int], constant: int,
        *, constant_as_object: bool = True,
    ):
        return self._inner.pair_with_constant(
            values, constant, constant_as_object=constant_as_object
        )

    def key_slice(self, sorted_flat, key: int) -> Tuple[int, int]:
        if not isinstance(sorted_flat, CompressedPairs):
            return self._inner.key_slice(sorted_flat, key)
        return (
            self._key_bound(sorted_flat, key, right=False),
            self._key_bound(sorted_flat, key, right=True),
        )

    def key_lower_bound(self, sorted_flat, key: int) -> int:
        if not isinstance(sorted_flat, CompressedPairs):
            return self._inner.key_lower_bound(sorted_flat, key)
        return self._key_bound(sorted_flat, key, right=False)

    def _key_bound(self, pairs: CompressedPairs, key: int,
                   *, right: bool) -> int:
        """Global pair index via the block anchors + one block decode."""
        anchors = pairs._anchors
        low, high = 0, len(anchors)
        while low < high:
            mid = (low + high) // 2
            last_s = anchors[mid][2]
            if last_s < key or (right and last_s == key):
                low = mid + 1
            else:
                high = mid
        if low == len(anchors):
            return pairs.n_pairs
        flat = pairs._decode(low)
        if right:
            _, end = self._inner.key_slice(flat, key)
            return pairs._cum[low] + end
        return pairs._cum[low] + self._inner.key_lower_bound(flat, key)

    def select_in_ranges(self, sorted_values, ranges) -> Sequence[int]:
        return self._inner.select_in_ranges(sorted_values, ranges)

    # -- accounting -----------------------------------------------------
    def flat_nbytes(self, flat, seen: Optional[set] = None) -> int:
        if isinstance(flat, CompressedPairs):
            return flat.nbytes(seen)
        return KernelBackend.flat_nbytes(self, flat, seen)
