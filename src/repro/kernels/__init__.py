"""Pluggable kernel backends for the vertical store's hot paths.

See :mod:`repro.kernels.base` for the interface.  This module owns
backend discovery and selection:

* :func:`get_backend` — name → shared backend instance;
* :func:`resolve_backend` — the policy used by the engine/store:
  ``'auto'`` picks NumPy when it is importable *and* the caller is not
  forcing one of the scalar sort algorithms (the counting/radix/timsort
  ablations are only meaningful on the interpreted backend), else the
  pure-Python reference backend;
* :func:`numpy_available` — availability probe.

Environment knobs (read at call time, so tests and CI can toggle them):

* ``REPRO_KERNELS`` — overrides the ``'auto'`` default (``python``,
  ``numpy`` or ``compressed``), without touching call sites;
* ``REPRO_KERNELS_DISABLE_NUMPY`` — any non-empty value other than
  ``0`` makes NumPy count as unavailable, so the pure-Python fallback
  can be exercised on machines that do have NumPy installed (the CI
  matrix uses this).
"""

from __future__ import annotations

import os
from typing import Optional, Union

from .base import KernelBackend
from .python_backend import PYTHON_KERNELS, PythonKernels

__all__ = [
    "BACKEND_NAMES",
    "KernelBackend",
    "KernelUnavailableError",
    "PythonKernels",
    "get_backend",
    "numpy_available",
    "resolve_backend",
]

#: Names accepted by the public ``backend=`` parameters.
BACKEND_NAMES = ("auto", "python", "numpy", "compressed")

_NUMPY_IMPORT_FAILED = False
_NUMPY_KERNELS: Optional[KernelBackend] = None
_COMPRESSED_KERNELS: dict = {}


class KernelUnavailableError(RuntimeError):
    """An explicitly requested backend cannot be provided."""


def numpy_available() -> bool:
    """Whether the NumPy backend can be used right now."""
    if os.environ.get("REPRO_KERNELS_DISABLE_NUMPY", "") not in ("", "0"):
        return False
    return _load_numpy_backend() is not None


def _load_numpy_backend() -> Optional[KernelBackend]:
    global _NUMPY_IMPORT_FAILED, _NUMPY_KERNELS
    if _NUMPY_KERNELS is None and not _NUMPY_IMPORT_FAILED:
        try:
            from .numpy_backend import NUMPY_KERNELS
        except ImportError:
            _NUMPY_IMPORT_FAILED = True
        else:
            _NUMPY_KERNELS = NUMPY_KERNELS
    return _NUMPY_KERNELS


def _load_compressed_backend() -> KernelBackend:
    # The compressed backend delegates decompressed-window math to an
    # inner backend; pick it at call time so REPRO_KERNELS_DISABLE_NUMPY
    # keeps the pure-Python composition honest.  One shared instance per
    # inner substrate.
    from .compressed_backend import CompressedKernels

    inner = _load_numpy_backend() if numpy_available() else PYTHON_KERNELS
    if inner.name not in _COMPRESSED_KERNELS:
        _COMPRESSED_KERNELS[inner.name] = CompressedKernels(inner)
    return _COMPRESSED_KERNELS[inner.name]


def get_backend(name: str) -> KernelBackend:
    """The shared backend instance for an explicit name."""
    if name == "python":
        return PYTHON_KERNELS
    if name == "compressed":
        return _load_compressed_backend()
    if name == "numpy":
        if not numpy_available():
            raise KernelUnavailableError(
                "the numpy kernel backend was requested but numpy is not "
                "available (not installed, or disabled via "
                "REPRO_KERNELS_DISABLE_NUMPY)"
            )
        return _load_numpy_backend()
    raise KernelUnavailableError(
        f"unknown kernel backend {name!r}; expected one of {BACKEND_NAMES}"
    )


def resolve_backend(
    backend: Union[str, KernelBackend, None] = "auto",
    *,
    algorithm: str = "auto",
) -> KernelBackend:
    """Apply the selection policy (see module docstring).

    ``backend`` may already be a :class:`KernelBackend` instance (passed
    through unchanged), a name from :data:`BACKEND_NAMES`, or ``None`` /
    ``'auto'`` for the default policy.  A forced scalar sort
    ``algorithm`` (anything but ``'auto'``) pins ``'auto'`` to the
    pure-Python backend — where that choice is observable — *before*
    the ``REPRO_KERNELS`` env default is consulted, so the ablation
    invariant holds under any environment.  Explicitly requesting the
    numpy backend together with a forced algorithm is a contradiction
    (the vectorized sort would silently ignore it) and raises
    ``ValueError``.
    """
    if isinstance(backend, KernelBackend):
        return backend
    if backend is None:
        backend = "auto"
    if backend == "auto" and algorithm != "auto":
        return PYTHON_KERNELS
    if backend == "auto":
        backend = os.environ.get("REPRO_KERNELS", "auto") or "auto"
    if backend == "auto":
        return get_backend("numpy") if numpy_available() else PYTHON_KERNELS
    if backend in ("numpy", "compressed") and algorithm != "auto":
        raise ValueError(
            f"algorithm={algorithm!r} is a scalar-sort ablation that the "
            f"{backend} backend would silently ignore; use backend='python' "
            "(or 'auto', which pins to python when an algorithm is forced)"
        )
    return get_backend(backend)
