"""Pure-Python kernel backend: the reference implementation.

This is the seed implementation of every hot-path primitive, relocated
behind :class:`repro.kernels.base.KernelBackend` — interpreted loops
over ``array('q')``, with sorting delegated to the paper's
counting/MSD-radix operating-range dispatch
(:func:`repro.sorting.dispatch.sort_pairs`).  It is always available
and serves as the ground truth the vectorized backends are
differentially tested against.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Sequence, Tuple

from ..sorting.dispatch import sort_pairs as _dispatch_sort_pairs
from .base import KernelBackend

PairArray = array


class PythonKernels(KernelBackend):
    """Interpreted ``array('q')`` kernels (see module docstring)."""

    name = "python"

    # -- representation -------------------------------------------------
    def asarray(self, flat):
        if isinstance(flat, array) and flat.typecode == "q":
            return flat
        if isinstance(flat, memoryview):
            # Shared-memory views (see from_buffer) materialize through
            # one memcpy; byte order is the host's on both sides.
            out = array("q")
            out.frombytes(flat.tobytes())
            return out
        return array("q", flat)

    def empty(self):
        return array("q")

    def copy_flat(self, flat):
        if isinstance(flat, memoryview):
            return self.asarray(flat)
        return array("q", flat)

    def from_buffer(self, buffer, n_values: int, *, offset: int = 0):
        # A memoryview cast supports len / indexing / slicing /
        # iteration / tolist / tobytes — everything the read paths of
        # PropertyTable and the join kernels touch — without copying
        # the shared segment.  Kernels that need a native array go
        # through asarray(), which materializes on demand.
        view = memoryview(buffer)[8 * offset: 8 * (offset + n_values)]
        return view.cast("q")

    def concat(self, chunks: Sequence):
        if len(chunks) == 1:
            return self.asarray(chunks[0])
        out = array("q")
        for chunk in chunks:
            if isinstance(chunk, array) and chunk.typecode == "q":
                out.extend(chunk)
            else:
                out.extend(self.asarray(chunk))
        return out

    # -- sorting & the Figure-5 merge -----------------------------------
    def sort_pairs(self, flat, *, dedup: bool = True, algorithm: str = "auto"):
        sorted_pairs, _ = _dispatch_sort_pairs(
            self.asarray(flat), dedup=dedup, algorithm=algorithm
        )
        return sorted_pairs

    def merge_new(self, main, inferred) -> Tuple[PairArray, PairArray]:
        main = self.asarray(main)
        inferred = self.asarray(inferred)
        if not len(inferred):
            return main, array("q")
        if not len(main):
            fresh = array("q", inferred)
            return fresh, array("q", inferred)

        merged = array("q")
        new = array("q")
        i = 0
        j = 0
        len_main = len(main)
        len_inf = len(inferred)
        while i < len_main and j < len_inf:
            main_key = (main[i], main[i + 1])
            inf_key = (inferred[j], inferred[j + 1])
            if main_key < inf_key:
                merged.append(main_key[0])
                merged.append(main_key[1])
                i += 2
            elif main_key > inf_key:
                merged.append(inf_key[0])
                merged.append(inf_key[1])
                new.append(inf_key[0])
                new.append(inf_key[1])
                j += 2
            else:  # duplicate: keep once, not new
                merged.append(main_key[0])
                merged.append(main_key[1])
                i += 2
                j += 2
        if i < len_main:
            merged.extend(main[i:])
        if j < len_inf:
            merged.extend(inferred[j:])
            new.extend(inferred[j:])
        return merged, new

    # -- views ----------------------------------------------------------
    def swap(self, flat):
        flat = self.asarray(flat)
        swapped = array("q", bytes(8 * len(flat)))
        swapped[0::2] = flat[1::2]
        swapped[1::2] = flat[0::2]
        return swapped

    def os_view(self, sorted_pairs, *, algorithm: str = "auto"):
        view, _ = _dispatch_sort_pairs(
            self.swap(sorted_pairs), dedup=False, algorithm=algorithm
        )
        return view

    # -- join primitives ------------------------------------------------
    def merge_join(self, view1, view2, *, swap: bool = False):
        out = array("q")
        i = j = 0
        n1 = len(view1)
        n2 = len(view2)
        append = out.append
        while i < n1 and j < n2:
            key1 = view1[i]
            key2 = view2[j]
            if key1 < key2:
                i += 2
            elif key1 > key2:
                j += 2
            else:
                i_end = i
                while i_end < n1 and view1[i_end] == key1:
                    i_end += 2
                j_end = j
                while j_end < n2 and view2[j_end] == key1:
                    j_end += 2
                rest2 = [view2[x] for x in range(j + 1, j_end, 2)]
                if swap:
                    for x in range(i + 1, i_end, 2):
                        rest1 = view1[x]
                        for r2 in rest2:
                            append(r2)
                            append(rest1)
                else:
                    for x in range(i + 1, i_end, 2):
                        rest1 = view1[x]
                        for r2 in rest2:
                            append(rest1)
                            append(r2)
                i = i_end
                j = j_end
        return out

    def intersect(self, view1, view2):
        out = array("q")
        i = j = 0
        n1 = len(view1)
        n2 = len(view2)
        while i < n1 and j < n2:
            key1 = (view1[i], view1[i + 1])
            key2 = (view2[j], view2[j + 1])
            if key1 < key2:
                i += 2
            elif key1 > key2:
                j += 2
            else:
                out.append(key1[0])
                out.append(key1[1])
                i += 2
                j += 2
        return out

    def consecutive_in_group(self, view):
        out = array("q")
        i = 0
        n = len(view)
        while i < n:
            key = view[i]
            previous = None
            j = i
            while j < n and view[j] == key:
                value = view[j + 1]
                if previous is not None and value != previous:
                    out.append(previous)
                    out.append(value)
                previous = value
                j += 2
            i = j
        return out

    # -- scans & lookups ------------------------------------------------
    def distinct_evens(self, sorted_flat) -> Sequence[int]:
        out = []
        previous = None
        for i in range(0, len(sorted_flat), 2):
            key = sorted_flat[i]
            if key != previous:
                out.append(key)
                previous = key
        return out

    def pair_with_constant(
        self, values: Iterable[int], constant: int, *, constant_as_object: bool = True
    ):
        out = array("q")
        append = out.append
        if constant_as_object:
            for value in values:
                append(value)
                append(constant)
        else:
            for value in values:
                append(constant)
                append(value)
        return out

    def key_slice(self, sorted_flat, key: int) -> Tuple[int, int]:
        n_pairs = len(sorted_flat) // 2
        # Lower bound.
        low, high = 0, n_pairs
        while low < high:
            mid = (low + high) // 2
            if sorted_flat[2 * mid] < key:
                low = mid + 1
            else:
                high = mid
        start = low
        # Upper bound.
        high = n_pairs
        while low < high:
            mid = (low + high) // 2
            if sorted_flat[2 * mid] <= key:
                low = mid + 1
            else:
                high = mid
        return start, low


#: Shared stateless instance (kernels hold no per-table state).
PYTHON_KERNELS = PythonKernels()
