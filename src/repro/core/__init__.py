"""The Inferray engine (paper Algorithm 1) and its high-level API."""

from .api import InferredModel, infer, infer_with_stats, load_and_materialize
from .engine import (
    FixedPointError,
    InferrayEngine,
    MaterializationStats,
    MaterializationTimeout,
)
from .scheduler import ParallelRuleScheduler, resolve_workers

__all__ = [
    "FixedPointError",
    "InferrayEngine",
    "InferredModel",
    "MaterializationStats",
    "MaterializationTimeout",
    "ParallelRuleScheduler",
    "infer",
    "infer_with_stats",
    "load_and_materialize",
    "resolve_workers",
]
