"""The unified ``repro.Store`` facade: a serving-grade read/write API.

The paper's pitch is that materialized inference "can be consumed as
explicit data without integrating the inference engine with the runtime
query engine".  This module is the single entry point that makes that
consumption ergonomic:

* **Lazy materialization** — :meth:`Store.add` / :meth:`Store.remove`
  only mark the closure stale; the next read flushes the pending
  mutations, using the semi-naive incremental fixed point for pure
  additions and a rebuild for deletions (forward chaining has no cheap
  deletion, paper §1).  Callers never orchestrate
  ``load_triples() + materialize()`` themselves.
* **Snapshot-isolated reads** — :meth:`Store.snapshot` returns an
  immutable :class:`Snapshot` over the store's committed pair arrays.
  Committed arrays are never mutated in place (merges replace them
  wholesale), so a snapshot is a zero-copy copy-on-write view: later
  writers proceed while the snapshot keeps serving the closure it was
  taken from.
* **One query entry point** — :meth:`Store.query` accepts a decoded
  ⟨s, p, o⟩ pattern (``None`` wildcards), a :class:`TriplePattern` (or
  a list of them), a prebuilt :class:`Query`, or a BGP string like
  ``"?s rdf:type ex:Person"`` (see :func:`repro.query.parse_bgp`).
* **Persistence** — :meth:`Store.save` / :meth:`Store.load` serialize
  the dictionary and the encoded, sorted pair arrays so a materialized
  closure reloads in O(read), with no inference re-run.

The asserted/inferred split (:meth:`Store.asserted`,
:meth:`Store.inferred`) is computed on *encoded* id triples — a set
diff over small int tuples — instead of decoding the whole closure.
"""

from __future__ import annotations

import io
import json
import os
import struct
import sys
import tempfile
import warnings
import zlib
from array import array
from dataclasses import dataclass, replace
from typing import (
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..dictionary.encoding import Dictionary, EncodedTriple
from ..faults import fire as _fire_fault
from ..kernels import KernelBackend
from ..query.bgp import Query, TriplePattern, parse_bgp
from ..rdf.graph import Graph
from ..rdf.ntriples import parse_file
from ..rdf.terms import Term, Triple, term_from_record, term_to_record
from ..rules.spec import Rule
from .engine import MATERIALIZE_MODES, InferrayEngine, MaterializationStats

__all__ = [
    "Snapshot",
    "Store",
    "StoreConfig",
    "StoreChecksumError",
    "StoreCorruptionError",
    "StoreFormatError",
    "StoreMagicError",
    "StoreTruncationError",
    "StoreVersionError",
    "is_store_file",
]

#: Magic bytes opening every serialized store file.
STORE_MAGIC = b"REPRO-STORE\x00"

#: Current on-disk format version.  Version 2 added the
#: ``"materialize"`` header key and the optional ``"sections"`` list
#: (named blobs appended after the asserted data — readers skip
#: sections they do not recognize, with a warning, so the section
#: mechanism is forward-compatible).  Version-1 files still load and
#: are treated as full-mode stores.  Version 3 adds per-table
#: ``"encoding": "crp1"`` entries: a compressed-backend store writes
#: its delta-encoded block streams verbatim (``n_bytes`` encoded bytes
#: instead of ``n_values * 8`` raw ones), so a compressed closure
#: reloads in O(compressed read) with its blocks intact.  Version 4
#: adds integrity metadata: a ``"crc32"`` on every table and section
#: entry, an ``"asserted_crc32"``, and the total ``"payload_bytes"``
#: after the header — the reader verifies each blob against its
#: checksum and fails with a :class:`StoreChecksumError` naming the
#: blob and its file offset instead of loading silently corrupted
#: data.  Versions 1–3 (no checksums) still load unchanged.
STORE_FORMAT_VERSION = 4

#: Format version that introduced compressed table entries (kept for
#: reference; every new file is written as v4 regardless of backend).
_COMPRESSED_FORMAT_VERSION = 3

#: On-disk format versions this build reads.
_SUPPORTED_VERSIONS = (1, 2, 3, 4)


class StoreFormatError(ValueError):
    """Raised when a file is not a readable serialized store."""


class StoreCorruptionError(StoreFormatError):
    """A store file is damaged (as opposed to merely incompatible).

    ``section`` names the part of the file that failed (for example
    ``"header"``, ``"table pid=7"``, ``"asserted"``, or
    ``"section 'litemat'"``) and ``offset`` is the byte position where
    the damage was detected, when known.  Both are folded into the
    message and kept as attributes for programmatic use.
    """

    def __init__(
        self,
        message: str,
        *,
        section: Optional[str] = None,
        offset: Optional[int] = None,
    ) -> None:
        detail = message
        if section is not None:
            detail = f"{detail} [section: {section}]"
        if offset is not None:
            detail = f"{detail} [offset: {offset}]"
        super().__init__(detail)
        self.section = section
        self.offset = offset


class StoreMagicError(StoreCorruptionError):
    """The file does not start with the store magic bytes."""


class StoreTruncationError(StoreCorruptionError):
    """The file ends before a declared blob is complete."""


class StoreChecksumError(StoreCorruptionError):
    """A blob's CRC32 does not match its header entry (v4 files)."""


class StoreVersionError(StoreCorruptionError):
    """The file declares a format version this build cannot read."""


@dataclass(frozen=True)
class StoreConfig:
    """Configuration shared by a :class:`Store` and its engine.

    ``timeout_seconds`` bounds every (re)materialization the store
    triggers; the engine raises
    :class:`~repro.core.engine.MaterializationTimeout` past it.
    """

    ruleset: Union[str, List[Rule]] = "rdfs-default"
    algorithm: str = "auto"
    backend: Union[str, KernelBackend] = "auto"
    os_cache: bool = True
    max_iterations: int = 10_000
    timeout_seconds: Optional[float] = None
    #: Workers for the parallel rule scheduler; ``None`` reads
    #: ``$REPRO_WORKERS`` (default 1), ``0`` means all cores.
    workers: Optional[int] = None
    #: Executor substrate for ``workers > 1``: 'thread' or 'process'
    #: force one; 'auto' lets the scheduler's cost model pick
    #: sequential/thread/process per flush from the estimated work
    #: (see :meth:`ParallelRuleScheduler.decide`); ``None`` reads
    #: ``$REPRO_PARALLEL_MODE``.
    parallel_mode: Optional[str] = None
    #: Join-input pairs above which one rule firing is split into
    #: key-range shards; ``None`` reads ``$REPRO_SPLIT_THRESHOLD``
    #: (default 16384), ``0`` disables intra-rule splitting.
    split_threshold: Optional[int] = None
    #: Entailment mode: 'full' materializes the whole closure, 'hybrid'
    #: absorbs the hierarchy-shaped rules into the LiteMat-style
    #: interval encoding (:mod:`repro.litemat`) and answers them at
    #: read time; ``None`` reads ``$REPRO_MATERIALIZE`` (default
    #: 'full').  Answers are identical either way.
    materialize: Optional[str] = None

    @property
    def resolved_materialize(self) -> str:
        """The effective mode after the ``$REPRO_MATERIALIZE`` default."""
        mode = self.materialize
        if mode is None:
            mode = os.environ.get("REPRO_MATERIALIZE") or "full"
        if mode not in MATERIALIZE_MODES:
            raise ValueError(
                f"materialize must be one of {MATERIALIZE_MODES}, "
                f"got {mode!r}"
            )
        return mode

    def make_engine(self) -> InferrayEngine:
        """A fresh engine honouring this configuration."""
        return InferrayEngine(
            self.ruleset,
            algorithm=self.algorithm,
            backend=self.backend,
            max_iterations=self.max_iterations,
            os_cache=self.os_cache,
            workers=self.workers,
            parallel_mode=self.parallel_mode,
            split_threshold=self.split_threshold,
            materialize_mode=self.resolved_materialize,
        )


#: Forms accepted by the unified query entry point (beyond s/p/o).
QueryInput = Union[str, TriplePattern, Query, Sequence[TriplePattern]]


class _ReadAPI:
    """Shared read-side behaviour of :class:`Store` and :class:`Snapshot`.

    Subclasses provide :meth:`_view` returning the triple of
    ``(TripleStore, Dictionary, asserted encoded triples)`` the reads
    run against — the live (freshly flushed) state for a store, the
    frozen state for a snapshot.
    """

    def _view(self):
        raise NotImplementedError

    # -- cardinality and membership -------------------------------------
    @property
    def n_triples(self) -> int:
        """Number of triples in the closure."""
        tables, _, _ = self._view()
        return tables.n_triples

    def __len__(self) -> int:
        return self.n_triples

    def contains(self, triple: Triple) -> bool:
        """Membership test against the closure."""
        tables, dictionary, _ = self._view()
        ids = tuple(
            dictionary.id_of(term)
            for term in (triple.subject, triple.predicate, triple.object)
        )
        if None in ids:
            return False
        return (ids[0], ids[1], ids[2]) in tables

    def __contains__(self, triple: Triple) -> bool:
        return self.contains(triple)

    # -- iteration ------------------------------------------------------
    def triples(self) -> Iterator[Triple]:
        """Iterate the whole closure, decoded."""
        tables, dictionary, _ = self._view()
        decode = dictionary.decode_triple
        for encoded in tables.triples():
            yield decode(encoded)

    def __iter__(self) -> Iterator[Triple]:
        return self.triples()

    def encoded_triples(self) -> Iterator[EncodedTriple]:
        """Iterate the closure as raw (s, p, o) id triples."""
        tables, _, _ = self._view()
        return tables.triples()

    def asserted(self) -> List[Triple]:
        """The asserted (explicitly added) triples, decoded, first-seen
        order, duplicates collapsed."""
        _, dictionary, asserted = self._view()
        seen = set()
        out = []
        for encoded in asserted:
            if encoded in seen:
                continue
            seen.add(encoded)
            out.append(dictionary.decode_triple(encoded))
        return out

    def inferred(self) -> Iterator[Triple]:
        """Only the triples added by inference.

        The diff runs on encoded id triples — a hash probe per closure
        triple — and only the surviving (inferred) triples are decoded.
        """
        tables, dictionary, asserted = self._view()
        asserted_ids = (
            asserted if isinstance(asserted, frozenset) else set(asserted)
        )
        decode = dictionary.decode_triple
        for encoded in tables.triples():
            if encoded not in asserted_ids:
                yield decode(encoded)

    def graph(self) -> Graph:
        """The closure as a decoded in-memory :class:`Graph`."""
        return Graph(self.triples())

    # -- the unified query entry point ----------------------------------
    def query(self, *args, **kwargs):
        """Query the closure; the argument shape selects the form.

        * ``query()`` / ``query(s, p, o)`` / ``query(subject=…, …)`` —
          decoded triple-pattern lookup with ``None`` wildcards; yields
          :class:`Triple` objects.
        * ``query("?s rdf:type ex:Person")`` — BGP string; returns a
          list of solutions, each a ``{variable name: Term}`` dict.
        * ``query(TriplePattern(…))`` / ``query([p1, p2, …])`` /
          ``query(Query([...]))`` — same, from pre-built patterns.
        """
        if len(args) == 1 and not kwargs:
            candidate = args[0]
            if isinstance(candidate, (str, TriplePattern, Query)):
                return self.solutions(candidate)
            if isinstance(candidate, (list, tuple)) and all(
                isinstance(item, TriplePattern) for item in candidate
            ):
                if not candidate:
                    raise ValueError("empty pattern list")
                return self.solutions(list(candidate))
        return self._pattern_query(*args, **kwargs)

    def _pattern_query(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Decoded single-pattern query (``None`` = wildcard)."""
        tables, dictionary, _ = self._view()
        ids: List[Optional[int]] = []
        for term in (subject, predicate, obj):
            if term is None:
                ids.append(None)
            else:
                term_id = dictionary.id_of(term)
                if term_id is None:
                    return iter(())
                ids.append(term_id)

        def generate() -> Iterator[Triple]:
            decode = dictionary.decode_triple
            for encoded in tables.query(ids[0], ids[1], ids[2]):
                yield decode(encoded)

        return generate()

    def _as_query(self, bgp: QueryInput) -> Query:
        if isinstance(bgp, Query):
            return bgp
        if isinstance(bgp, str):
            return Query(parse_bgp(bgp))
        if isinstance(bgp, TriplePattern):
            return Query([bgp])
        return Query(list(bgp))

    def solutions(self, bgp: QueryInput) -> List[Dict[str, Term]]:
        """All BGP solutions as ``{variable name: Term}`` dicts."""
        query = self._as_query(bgp)
        return [
            {var.name: term for var, term in bindings.items()}
            for bindings in query.execute(self)
        ]

    def select(
        self, bgp: QueryInput, *variables
    ) -> List[Tuple[Term, ...]]:
        """Distinct projected BGP solutions (SELECT DISTINCT)."""
        return self._as_query(bgp).select(self, *variables)

    def ask(self, bgp: QueryInput) -> bool:
        """True iff the BGP has at least one solution."""
        return self._as_query(bgp).ask(self)


class Snapshot(_ReadAPI):
    """An immutable, point-in-time view of a store's closure.

    Taking one is cheap: the snapshot aliases the store's committed
    pair arrays (copy-on-write — see
    :meth:`repro.store.triple_store.TripleStore.share_view`) and pins
    the asserted-id set.  Concurrent readers holding a snapshot keep
    seeing a consistent closure while writers mutate the store.
    """

    __slots__ = (
        "_tables",
        "_dictionary",
        "_asserted",
        "ruleset_name",
        "epoch",
    )

    def __init__(
        self,
        tables,
        dictionary,
        asserted,
        ruleset_name: str,
        epoch: int = 0,
    ):
        self._tables = tables
        self._dictionary = dictionary
        self._asserted = frozenset(asserted)
        self.ruleset_name = ruleset_name
        #: The store's closure epoch this snapshot was pinned at.
        self.epoch = epoch

    def _view(self):
        return self._tables, self._dictionary, self._asserted

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Snapshot {self.n_triples} triples, "
            f"epoch={self.epoch}, ruleset={self.ruleset_name!r}>"
        )


class Store(_ReadAPI):
    """The unified facade: mutate freely, read a complete closure.

    >>> from repro.rdf import iri, Triple, RDF, RDFS
    >>> store = Store([
    ...     Triple(iri("ex:human"), RDFS.subClassOf, iri("ex:mammal")),
    ...     Triple(iri("ex:Bart"), RDF.type, iri("ex:human")),
    ... ])
    >>> Triple(iri("ex:Bart"), RDF.type, iri("ex:mammal")) in store
    True
    >>> [s["who"] for s in store.query("?who a ex:mammal")]
    [IRI(value='ex:Bart')]

    Mutations are lazy: the closure is (re)materialized on the next
    read — incrementally for pure additions, via rebuild when
    deletions are pending.
    """

    def __init__(
        self,
        triples: Optional[Iterable[Triple]] = None,
        *,
        config: Optional[StoreConfig] = None,
        **options,
    ):
        if config is None:
            config = StoreConfig(**options)
        elif options:
            config = replace(config, **options)
        self.config = config
        self._engine = config.make_engine()
        self._pending_adds: List[Triple] = []
        self._pending_removes: List[Triple] = []
        self._last_stats: Optional[MaterializationStats] = None
        #: Monotonic closure version: bumped on every successful flush.
        self._epoch = 0
        if triples is not None:
            self.add(triples)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_file(
        cls,
        path: str,
        *,
        config: Optional[StoreConfig] = None,
        **options,
    ) -> "Store":
        """A store seeded from an N-Triples (or ``.ttl`` Turtle) file."""
        store = cls(config=config, **options)
        store.add_file(path)
        return store

    def add_file(self, path: str) -> int:
        """Schedule every triple of a file; returns the count scheduled.

        ``.ttl`` / ``.turtle`` files are parsed as Turtle, anything
        else as N-Triples.
        """
        if path.endswith((".ttl", ".turtle")):
            from ..rdf.turtle import parse_turtle_file

            return self.add(parse_turtle_file(path))
        return self.add(parse_file(path))

    # ------------------------------------------------------------------
    # Mutations (lazy)
    # ------------------------------------------------------------------
    def add(self, triples: Union[Triple, Iterable[Triple]]) -> int:
        """Schedule triples for assertion; returns the count scheduled.

        Nothing is materialized here — the next read flushes the
        pending delta through the semi-naive incremental fixed point.
        """
        if isinstance(triples, Triple):
            triples = [triples]
        before = len(self._pending_adds)
        self._pending_adds.extend(triples)
        return len(self._pending_adds) - before

    def remove(self, triples: Union[Triple, Iterable[Triple]]) -> int:
        """Schedule asserted triples for retraction; returns the count
        of distinct triples actually dequeued or scheduled.

        Every queued (pending-add) copy of the triple is dropped, and
        if the triple is *also* already asserted in the engine a
        retraction is scheduled too — ``remove`` always wins over any
        earlier ``add``.  Retracting triples that were never asserted
        (inferred or unknown) is a no-op, mirroring
        :meth:`InferrayEngine.retract_and_rematerialize`, and does not
        count toward the return value.
        """
        if isinstance(triples, Triple):
            triples = [triples]
        targets = list(triples)
        if not targets:
            return 0
        target_set = set(targets)
        dequeued = set()
        if self._pending_adds:
            kept = []
            for pending in self._pending_adds:
                if pending in target_set:
                    dequeued.add(pending)
                else:
                    kept.append(pending)
            self._pending_adds = kept
        engine_asserted = set(self._engine.asserted_encoded())
        scheduled = 0
        seen = set()
        for triple in targets:
            if triple in seen:
                continue
            seen.add(triple)
            hit = triple in dequeued
            if self._encode_known(triple) in engine_asserted:
                self._pending_removes.append(triple)
                hit = True
            if hit:
                scheduled += 1
        return scheduled

    def _encode_known(self, triple: Triple):
        """The encoded id triple, or ``None`` for unknown terms."""
        dictionary = self._engine.dictionary
        ids = tuple(
            dictionary.id_of(term)
            for term in (triple.subject, triple.predicate, triple.object)
        )
        return None if None in ids else ids

    @property
    def stale(self) -> bool:
        """Whether mutations are pending against the current closure."""
        return bool(
            self._pending_adds
            or self._pending_removes
            or not self._engine.is_materialized
        )

    # ------------------------------------------------------------------
    # Materialization control
    # ------------------------------------------------------------------
    def _refresh(self) -> Optional[MaterializationStats]:
        """Flush pending mutations; returns stats if inference ran.

        A failed flush (timeout, fixed-point bound, kernel error) must
        never lose writes: each stage's delta stays queued until the
        engine has durably absorbed it, and on exception whatever was
        not yet handed over is restored to the pending queues, so
        :attr:`stale` remains true and a later flush retries it.
        """
        engine = self._engine
        timeout = self.config.timeout_seconds
        adds = self._pending_adds
        removes = self._pending_removes
        if not adds and not removes:
            if engine.is_materialized:
                return None
            stats = engine.materialize(timeout_seconds=timeout)
            self._commit_flush(stats)
            return stats
        self._pending_adds = []
        self._pending_removes = []
        try:
            if removes:
                # Deletion: forward chaining requires a rebuild
                # (paper §1).
                stats = engine.retract_and_rematerialize(
                    removes, timeout_seconds=timeout
                )
                removes = []
                if adds:
                    stats = engine.materialize_incremental(
                        adds, timeout_seconds=timeout
                    )
                    adds = []
            elif engine.is_materialized:
                stats = engine.materialize_incremental(
                    adds, timeout_seconds=timeout
                )
                adds = []
            else:
                engine.load_triples(adds)
                adds = []
                stats = engine.materialize(timeout_seconds=timeout)
        except BaseException:
            self._restore_pending(adds, removes)
            raise
        self._commit_flush(stats)
        return stats

    def _commit_flush(self, stats: MaterializationStats) -> None:
        """Record a successful flush: stats and a new closure epoch."""
        self._last_stats = stats
        self._epoch += 1

    def _restore_pending(
        self, adds: List[Triple], removes: List[Triple]
    ) -> None:
        """Re-queue the deltas a failed flush had not yet applied.

        Deltas the engine absorbed before failing are filtered out by
        probing its asserted set: an aborted incremental flush has
        already extended ``_asserted`` (and an aborted rebuild already
        dropped the retracted triples), and the engine's own staleness
        flag makes the next flush finish the inference over them —
        re-queueing those would double-apply the delta.
        """
        if adds or removes:
            absorbed = set(self._engine.asserted_encoded())
            adds = [
                t for t in adds if self._encode_known(t) not in absorbed
            ]
            removes = [
                t for t in removes if self._encode_known(t) in absorbed
            ]
        self._pending_adds = adds + self._pending_adds
        self._pending_removes = removes + self._pending_removes

    def materialize(self) -> MaterializationStats:
        """Force the closure current now; returns the run's stats.

        Reads do this implicitly; calling it explicitly is useful to
        pay the inference cost at a controlled time (e.g. before
        serving) or to obtain the stats of the flush.  When nothing is
        pending this is the engine's cheap idempotent no-op.
        """
        stats = self._refresh()
        if stats is None:
            stats = self._engine.materialize(
                timeout_seconds=self.config.timeout_seconds
            )
        return stats

    @property
    def stats(self) -> Optional[MaterializationStats]:
        """Stats of the most recent materialization flush, if any."""
        return self._last_stats

    @property
    def epoch(self) -> int:
        """The closure version: bumped on every successful flush.

        Snapshots carry the epoch they were pinned at, so a serving
        layer can tell readers exactly which closure version answered
        (and how far behind the live store a pinned reader is).
        """
        return self._epoch

    @property
    def engine(self) -> InferrayEngine:
        """The underlying engine (advanced use; may be stale until a
        read or :meth:`materialize` flushes pending mutations)."""
        return self._engine

    @property
    def materialize_mode(self) -> str:
        """The entailment mode this store runs under: 'full' or 'hybrid'."""
        return self._engine.materialize_mode

    @property
    def absorbed_rules(self) -> Tuple[str, ...]:
        """Rules the active hybrid encoding answers at read time.

        Empty in full mode, before the first flush, and when the last
        hybrid flush fell back to the full catalogue (see
        :attr:`hybrid_fallback`).
        """
        return tuple(self._engine.absorbed_rule_names)

    @property
    def hybrid_fallback(self) -> Optional[str]:
        """Why the last hybrid flush ran the full catalogue, or None."""
        return self._engine.hybrid_fallback_reason

    @property
    def n_asserted(self) -> int:
        """Asserted triples, including pending ones (duplicates incl.)."""
        return self._engine.n_asserted + len(self._pending_adds)

    def memory_bytes(self) -> int:
        """Bytes held by the store's pair arrays and caches."""
        return self._engine.memory_bytes()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the store's worker pools and shared-memory segments.

        Parallel flushes keep their worker pool (and, in process mode,
        the exported shared-memory segments) alive between flushes so
        incremental updates never pay a pool cold start; ``close()``
        tears that state down deterministically.  Idempotent, and the
        store stays *readable and writable* — the next parallel flush
        lazily restarts its pool.  Garbage collection would reap the
        pools too (``weakref.finalize``), but long-lived processes
        (servers, notebooks) should close explicitly — or use the
        store as a context manager::

            with Store(triples, workers=4) as store:
                ...  # pools live here
            # pools and segments released
        """
        self._engine.close()

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Read-side plumbing
    # ------------------------------------------------------------------
    def _view(self):
        self._refresh()
        engine = self._engine
        # The engine's asserted list is handed out uncopied — reads
        # only iterate it (copying per read would cost O(n_asserted)
        # on every BGP binding probe); snapshot() freezes its own copy.
        # ``read_view`` is ``main`` in full mode and the hybrid virtual
        # view (stored tables + interval-encoding rewrite) in hybrid
        # mode — every read above this line is mode-agnostic.
        return engine.read_view, engine.dictionary, engine._asserted

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> Snapshot:
        """An immutable view of the current closure (flushes first).

        The snapshot stays valid — and unchanged — across any later
        :meth:`add` / :meth:`remove` on this store.
        """
        self._refresh()
        engine = self._engine
        return Snapshot(
            engine.read_view.share_view(),
            engine.dictionary,
            engine.asserted_encoded(),
            engine.ruleset_name,
            self._epoch,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> int:
        """Serialize the materialized closure; returns bytes written.

        The file holds the dictionary's term lists plus every
        property's committed (sorted-unique) pair array and the
        asserted id triples, so :meth:`load` restores the closure in
        O(read) without re-running inference.

        The write is crash-safe: the bytes go to a temporary file in
        the same directory, which is fsynced and atomically
        ``os.replace``\\ d over ``path`` (the directory is fsynced too,
        so the rename itself survives power loss).  A crash at any
        point leaves either the previous file intact or the complete
        new one — never a torn mix.  Every blob carries a CRC32 in the
        header (format v4) that :meth:`load` verifies.
        """
        self._refresh()
        engine = self._engine
        property_terms, resource_terms = engine.dictionary.term_lists()
        table_entries = []
        blobs: List[bytes] = []
        for property_id, flat in engine.main.table_arrays():
            serialize = getattr(flat, "serialize", None)
            if serialize is not None:
                # Compressed backend: store the self-describing block
                # stream verbatim — reload costs O(compressed read) and
                # the encoded blocks survive the round trip unchanged.
                blob = serialize()
                table_entries.append(
                    {
                        "pid": property_id,
                        "n_values": len(flat),
                        "encoding": "crp1",
                        "n_bytes": len(blob),
                        "crc32": zlib.crc32(blob),
                    }
                )
            else:
                blob = _flat_to_le_bytes(flat)
                table_entries.append(
                    {
                        "pid": property_id,
                        "n_values": len(flat),
                        "crc32": zlib.crc32(blob),
                    }
                )
            blobs.append(blob)
        asserted_flat = array("q")
        for subject, property_id, obj in engine.asserted_encoded():
            asserted_flat.append(subject)
            asserted_flat.append(property_id)
            asserted_flat.append(obj)
        # "materialize" records what the stored *tables* represent: a
        # hybrid flush that fell back to the full catalogue stores the
        # complete closure, so its file is a full-mode file.
        hybrid_state = engine.hybrid_state_payload()
        sections: List[dict] = []
        section_blobs: List[bytes] = []
        if hybrid_state is not None:
            blob = json.dumps(
                hybrid_state, separators=(",", ":")
            ).encode("utf-8")
            sections.append(
                {
                    "name": "litemat",
                    "n_bytes": len(blob),
                    "crc32": zlib.crc32(blob),
                }
            )
            section_blobs.append(blob)
        asserted_bytes = _flat_to_le_bytes(asserted_flat)
        body_bytes = (
            sum(len(blob) for blob in blobs)
            + len(asserted_bytes)
            + sum(len(blob) for blob in section_blobs)
        )
        header = {
            "format": "repro-store",
            "version": STORE_FORMAT_VERSION,
            "ruleset": engine.ruleset_name,
            "algorithm": engine.algorithm,
            "materialized": engine.is_materialized,
            "materialize": "hybrid" if hybrid_state is not None else "full",
            "n_triples": engine.n_triples,
            "property_terms": [term_to_record(t) for t in property_terms],
            "resource_terms": [term_to_record(t) for t in resource_terms],
            "tables": table_entries,
            "n_asserted": len(asserted_flat) // 3,
            "asserted_crc32": zlib.crc32(asserted_bytes),
            "payload_bytes": body_bytes,
            "sections": sections,
        }
        payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
        # Crash safety: write everything to a same-directory temp file,
        # force it to disk, then atomically rename over the target.  A
        # fault anywhere in between leaves the previous file untouched.
        target = os.path.abspath(path)
        directory = os.path.dirname(target) or os.curdir
        fd, tmp_path = tempfile.mkstemp(
            dir=directory, prefix=os.path.basename(target) + ".", suffix=".tmp"
        )
        written = 0
        try:
            with os.fdopen(fd, "wb") as handle:
                written += handle.write(STORE_MAGIC)
                written += handle.write(struct.pack("<I", len(payload)))
                written += handle.write(payload)
                _fire_fault("persist.write", target)
                for blob in blobs:
                    written += handle.write(blob)
                written += handle.write(asserted_bytes)
                for blob in section_blobs:
                    written += handle.write(blob)
                handle.flush()
                _fire_fault("persist.fsync", target)
                os.fsync(handle.fileno())
            os.replace(tmp_path, target)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise
        _fsync_directory(directory)
        return written

    @classmethod
    def load(
        cls,
        path: str,
        *,
        config: Optional[StoreConfig] = None,
        **options,
    ) -> "Store":
        """Deserialize a saved store; no inference is re-run.

        ``backend`` / ``algorithm`` / other :class:`StoreConfig`
        options may be overridden (the pair arrays are
        backend-portable); the ruleset and entailment mode default to
        the saved ones (pre-hybrid files are full-mode).  A store saved
        from a custom (unnamed) rule list needs an explicit ``ruleset=``
        override here.

        Loading across modes stays correct, not O(read): a hybrid file
        opened as ``materialize="full"`` holds only the reduced closure,
        so it re-materializes on first read; a full file opened as
        ``materialize="hybrid"`` already holds the complete closure and
        serves it as-is (nothing absorbed until the next flush).
        """
        with open(path, "rb") as handle:
            header, tables, asserted, sections = _read_store_file(handle)
        saved_mode = header.get("materialize", "full")
        overrides = dict(options)
        if config is None:
            if "ruleset" not in overrides:
                overrides["ruleset"] = header["ruleset"]
            if "algorithm" not in overrides:
                overrides["algorithm"] = header["algorithm"]
            if "materialize" not in overrides:
                overrides["materialize"] = saved_mode
            config = StoreConfig(**overrides)
        elif overrides:
            config = replace(config, **overrides)
        if config.ruleset == "custom":
            raise StoreFormatError(
                f"{path!r} was saved from a custom rule list; pass an "
                "explicit ruleset= to Store.load()"
            )
        try:
            dictionary = Dictionary.from_term_lists(
                [term_from_record(r) for r in header["property_terms"]],
                [term_from_record(r) for r in header["resource_terms"]],
            )
        except (KeyError, TypeError, ValueError, IndexError) as error:
            raise StoreCorruptionError(
                f"corrupt dictionary term records: {error!r}",
                section="header",
            ) from error
        store = cls(config=config)
        engine = store._engine
        materialized = bool(header["materialized"])
        if saved_mode == "hybrid" and engine.materialize_mode != "hybrid":
            # The file holds only the reduced closure — a full-mode
            # reader must complete it before serving.
            materialized = False
        engine.restore(
            dictionary,
            asserted,
            tables,
            materialized=materialized,
        )
        if engine.materialize_mode == "hybrid" and materialized:
            payload = sections.get("litemat")
            if payload is not None:
                engine.adopt_hybrid_state(payload)
            else:
                engine.mark_hybrid_fallback(
                    "loaded from a full-mode store file (closure already "
                    "complete; nothing absorbed until the next flush)"
                )
        return store


# ----------------------------------------------------------------------
# Serialization plumbing
# ----------------------------------------------------------------------
def _fsync_directory(directory: str) -> None:
    """Force a directory's entry table to disk (best effort).

    Needed after ``os.replace`` for the rename itself to be durable.
    Some filesystems refuse to fsync a directory fd; that only costs
    durability of the rename, never atomicity, so failures are ignored.
    """
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(dir_fd)
    except OSError:
        pass
    finally:
        os.close(dir_fd)


def _flat_to_le_bytes(flat) -> bytes:
    """A flat int64 sequence as little-endian bytes (any backend)."""
    if isinstance(flat, array) and flat.typecode == "q":
        if sys.byteorder == "little":
            return flat.tobytes()
        swapped = array("q", flat)
        swapped.byteswap()
        return swapped.tobytes()
    astype = getattr(flat, "astype", None)
    if astype is not None:  # numpy ndarray
        return astype("<i8", copy=False).tobytes()
    fallback = array("q", (int(value) for value in flat))
    return _flat_to_le_bytes(fallback)


def _le_bytes_to_flat(data: bytes) -> array:
    """Little-endian bytes back to a host-order ``array('q')``."""
    flat = array("q")
    flat.frombytes(data)
    if sys.byteorder == "big":
        flat.byteswap()
    return flat


def _crp1_to_flat(blob: bytes, entry: dict):
    """A ``"crp1"`` table blob back to a :class:`CompressedPairs`.

    Deserialization rebuilds the encoded blocks exactly as written —
    a compressed-backend reader adopts them as-is (O(read) reload,
    blocks shared with nothing to re-encode); any other backend's
    ``asarray`` decodes them into its native flat type on restore.
    """
    from ..kernels import numpy_available
    from ..kernels.compressed_backend import (
        CompressedPairs,
        _NumpyCodec,
        _PythonCodec,
    )

    codec = _NumpyCodec() if numpy_available() else _PythonCodec()
    try:
        pairs = CompressedPairs.deserialize(blob, codec)
    except ValueError as error:
        raise StoreFormatError(
            f"corrupt compressed table (pid {entry.get('pid')}): {error}"
        ) from error
    if len(pairs) != entry["n_values"]:
        raise StoreFormatError(
            f"compressed table (pid {entry.get('pid')}) decodes to "
            f"{len(pairs)} values, header says {entry['n_values']}"
        )
    return pairs


#: Header keys every readable store file (v1+) must carry.
_REQUIRED_HEADER_KEYS = (
    "ruleset",
    "algorithm",
    "materialized",
    "property_terms",
    "resource_terms",
    "tables",
    "n_asserted",
)


def _read_blob(handle, n_bytes: int, section: str, offset: int) -> bytes:
    """Read exactly ``n_bytes`` or raise a located truncation error."""
    blob = handle.read(n_bytes)
    if len(blob) != n_bytes:
        raise StoreTruncationError(
            f"truncated store file: {section} declares {n_bytes} bytes "
            f"but only {len(blob)} remain",
            section=section,
            offset=offset,
        )
    return blob


def _check_crc(blob: bytes, entry, key: str, section: str, offset: int):
    """Verify a blob against its header CRC32, when one is present.

    v1–v3 files carry no checksums; their entries simply lack the key
    and are accepted as-is.  Header-only rewrites (version downgrades,
    extra sections) leave blob checksums valid, so presence — not the
    declared version — gates verification.
    """
    expected = entry.get(key) if isinstance(entry, dict) else None
    if expected is None:
        return
    actual = zlib.crc32(blob)
    if actual != expected:
        raise StoreChecksumError(
            f"checksum mismatch in {section}: stored crc32={expected}, "
            f"computed crc32={actual}",
            section=section,
            offset=offset,
        )


def _read_store_file(handle: io.BufferedIOBase):
    """Parse a serialized store:
    (header, [(pid, flat)…], asserted, {section name: payload}).

    Optional header sections the build does not recognize are skipped
    with a warning (their byte length is in the header), so files from
    newer writers degrade gracefully instead of failing to load.

    Every failure surfaces as a :class:`StoreCorruptionError` subclass
    naming the damaged section and its byte offset — raw
    ``struct.error`` / ``json.JSONDecodeError`` / ``KeyError`` from a
    malformed file never escape.
    """
    magic = handle.read(len(STORE_MAGIC))
    if magic != STORE_MAGIC:
        raise StoreMagicError(
            "not a repro store file (bad magic)", section="magic", offset=0
        )
    offset = len(STORE_MAGIC)
    length_bytes = _read_blob(handle, 4, "header length", offset)
    (header_len,) = struct.unpack("<I", length_bytes)
    offset += 4
    header_bytes = _read_blob(handle, header_len, "header", offset)
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise StoreCorruptionError(
            f"corrupt store header: {error}", section="header", offset=offset
        ) from error
    if not isinstance(header, dict):
        raise StoreCorruptionError(
            "corrupt store header: not a JSON object",
            section="header",
            offset=offset,
        )
    if header.get("version") not in _SUPPORTED_VERSIONS:
        raise StoreVersionError(
            f"unsupported store format version {header.get('version')!r} "
            f"(this build reads versions {_SUPPORTED_VERSIONS})",
            section="header",
            offset=offset,
        )
    for key in _REQUIRED_HEADER_KEYS:
        if key not in header:
            raise StoreCorruptionError(
                f"store header is missing required key {key!r}",
                section="header",
                offset=offset,
            )
    offset += header_len
    try:
        return (header,) + _read_store_body(handle, header, offset)
    except StoreFormatError:
        raise
    except (
        AttributeError,
        KeyError,
        TypeError,
        ValueError,
        struct.error,
    ) as error:
        # A hostile or damaged header can make any body field the
        # wrong type or shape; surface it as corruption, located at
        # least to the body, instead of leaking the raw error.
        raise StoreCorruptionError(
            f"malformed store header field: {error!r}",
            section="header",
            offset=offset,
        ) from error


def _read_store_body(handle, header: dict, offset: int):
    declared = header.get("payload_bytes")
    if declared is not None:
        # Whole-payload truncation check up front, from the total
        # length v4 headers declare.  Extra trailing bytes are fine
        # (a newer writer may append sections this build skips);
        # missing bytes are not.
        position = handle.tell()
        remaining = handle.seek(0, io.SEEK_END) - position
        handle.seek(position)
        if remaining < declared:
            raise StoreTruncationError(
                f"truncated store file: header declares a "
                f"{declared}-byte payload but only {remaining} bytes "
                "remain",
                section="payload",
                offset=offset,
            )
    tables = []
    for index, entry in enumerate(header["tables"]):
        encoding = entry.get("encoding")
        section = f"table pid={entry.get('pid')}"
        if encoding == "crp1":
            n_bytes = int(entry["n_bytes"])
            blob = _read_blob(handle, n_bytes, section, offset)
            _check_crc(blob, entry, "crc32", section, offset)
            tables.append((entry["pid"], _crp1_to_flat(blob, entry)))
        elif encoding is None:
            n_bytes = int(entry["n_values"]) * 8
            if n_bytes < 0:
                raise StoreCorruptionError(
                    f"negative n_values in table entry {index}",
                    section=section,
                    offset=offset,
                )
            blob = _read_blob(handle, n_bytes, section, offset)
            _check_crc(blob, entry, "crc32", section, offset)
            tables.append((entry["pid"], _le_bytes_to_flat(blob)))
        else:
            raise StoreFormatError(
                f"unknown table encoding {encoding!r} (this build reads "
                "raw and 'crp1' tables)"
            )
        offset += n_bytes
    n_bytes = int(header["n_asserted"]) * 3 * 8
    if n_bytes < 0:
        raise StoreCorruptionError(
            "negative n_asserted in store header",
            section="asserted",
            offset=offset,
        )
    blob = _read_blob(handle, n_bytes, "asserted", offset)
    _check_crc(blob, header, "asserted_crc32", "asserted", offset)
    offset += n_bytes
    flat = _le_bytes_to_flat(blob)
    asserted = [
        (flat[i], flat[i + 1], flat[i + 2]) for i in range(0, len(flat), 3)
    ]
    sections: Dict[str, dict] = {}
    for entry in header.get("sections", ()):
        name = entry.get("name")
        n_bytes = int(entry.get("n_bytes", 0))
        section = f"section {name!r}"
        blob = _read_blob(handle, n_bytes, section, offset)
        _check_crc(blob, entry, "crc32", section, offset)
        if name == "litemat":
            try:
                sections[name] = json.loads(blob.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                raise StoreCorruptionError(
                    f"corrupt store section {name!r}: {error}",
                    section=section,
                    offset=offset,
                ) from error
        else:
            warnings.warn(
                f"repro store: skipping unknown optional section "
                f"{name!r} ({n_bytes} bytes); the file was probably "
                "written by a newer build",
                stacklevel=4,
            )
        offset += n_bytes
    return tables, asserted, sections


def is_store_file(path: str) -> bool:
    """Whether ``path`` starts with the serialized-store magic bytes."""
    try:
        with open(path, "rb") as handle:
            return handle.read(len(STORE_MAGIC)) == STORE_MAGIC
    except OSError:
        return False
