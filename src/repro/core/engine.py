"""InferrayEngine: the paper's Algorithm 1 over the vertical store.

The engine ties everything together:

1. **Load** — triples are dictionary-encoded (dense split numbering,
   with property promotion) and bulk-loaded into the ``main`` store,
   sorted and deduplicated per property.
2. **Transitivity closures** (line 2) — every θ-rule of the active
   ruleset closes its target properties with the Nuutila/interval
   machinery *before* the fixed point: subClassOf/subPropertyOf for the
   RDFS flavours, plus every ``owl:TransitiveProperty`` and the
   symmetric-transitive ``owl:sameAs`` for RDFS-Plus.
3. **Fixed point** (lines 3–8) — rules fire in bulk against
   (main × new), the inferred buffers are sorted/deduplicated and merged
   per property (Figure 5), producing the next ``new`` delta, until an
   iteration derives nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..dictionary.encoding import Dictionary, encode_dataset
from ..kernels import KernelBackend, resolve_backend
from ..litemat.encoder import HierarchyEncoding
from ..litemat.planner import HybridPlan, plan_hybrid
from ..litemat.view import HybridTripleView
from ..rdf.ntriples import parse_file
from ..rdf.terms import Term, Triple
from ..rules.rulesets import get_ruleset
from ..rules.spec import Rule, RuleContext, Vocab
from ..store.triple_store import InferredBuffers, TripleStore
from .scheduler import ParallelRuleScheduler, resolve_workers

#: Materialization strategies (see ``InferrayEngine`` / ``repro.Store``).
MATERIALIZE_MODES = ("full", "hybrid")


class FixedPointError(RuntimeError):
    """Raised when the fixed point exceeds the iteration safety bound."""


class MaterializationTimeout(RuntimeError):
    """Raised when a materialization exceeds its wall-clock budget.

    All engines (Inferray and the baselines) raise this cooperatively so
    the benchmark harness can report timeouts the way the paper's tables
    mark them ('–').
    """


@dataclass
class MaterializationStats:
    """Outcome of one :meth:`InferrayEngine.materialize` run."""

    n_input: int = 0
    n_inferred: int = 0
    n_total: int = 0
    iterations: int = 0
    closure_pairs: int = 0
    closure_seconds: float = 0.0
    inference_seconds: float = 0.0
    merge_seconds: float = 0.0
    total_seconds: float = 0.0
    per_rule: Dict[str, int] = field(default_factory=dict)
    #: Workers the rule scheduler ran with (1 = sequential).
    workers: int = 1
    #: Executor substrate the run *actually* used: 'sequential',
    #: 'thread' or 'process' (recorded from the resolved decision, so a
    #: mid-session fallback is reflected here, not the request).
    parallel_mode: str = "sequential"
    #: The scheduler's recorded executor pick for this run (see
    #: :class:`repro.core.scheduler.ExecutorDecision`), as a plain dict.
    parallel_decision: Optional[dict] = None
    #: Why a picked process substrate degraded to threads (None if the
    #: run used the substrate it picked) — mirrors ``hybrid_fallback``.
    parallel_fallback: Optional[str] = None
    #: Waves in the scheduler's dependency stratification.
    n_waves: int = 0
    #: Rules that were split into key-range shards, with the largest
    #: shard count observed across iterations.
    rule_shards: Dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds per wave index, summed across iterations.
    per_wave_seconds: List[float] = field(default_factory=list)
    #: Per-rule firing seconds, summed across iterations.
    per_rule_seconds: Dict[str, float] = field(default_factory=dict)
    #: Summed per-rule busy time (the sequential-equivalent cost).
    rule_busy_seconds: float = 0.0
    #: Effective rule-firing concurrency: summed per-rule busy time over
    #: wall-clock inference time.  ~1.0 when sequential; approaches the
    #: worker count under ideal scaling.
    parallel_speedup: float = 1.0
    #: Materialization strategy this run used ('full' or 'hybrid').
    materialize_mode: str = "full"
    #: Rules the hierarchy encoding absorbed (hybrid runs; empty when
    #: full or when the hybrid run fell back to the full catalogue).
    absorbed_rules: List[str] = field(default_factory=list)
    #: Why a hybrid run fell back to the full catalogue (None if it
    #: didn't).
    hybrid_fallback: Optional[str] = None

    @property
    def triples_per_second(self) -> float:
        """Inferred-triple throughput over the whole materialization."""
        if self.total_seconds <= 0:
            return 0.0
        return self.n_inferred / self.total_seconds


class InferrayEngine:
    """Forward-chaining materialization with sort-merge-join inference.

    Parameters
    ----------
    ruleset:
        A ruleset name ('rho-df', 'rdfs-default', 'rdfs-full',
        'rdfs-plus', 'rdfs-plus-full') or an explicit list of
        :class:`repro.rules.Rule` instances.
    algorithm:
        Scalar pair-sort algorithm: 'auto' (the paper's counting/
        MSDA-radix operating-range dispatch), or forced 'counting' /
        'radix' / 'timsort' for ablations.  Forcing one pins
        ``backend='auto'`` to the pure-Python kernels, where the choice
        is observable.
    backend:
        Kernel backend the store and rule executors run on: 'auto'
        (NumPy when available, else pure Python), 'python', 'numpy', or
        a :class:`repro.kernels.KernelBackend` instance.
    tracer:
        Optional memory tracer (see :mod:`repro.memsim`) that receives
        table-level operation events for the Figure-7/8 experiments.
    max_iterations:
        Safety bound on fixed-point iterations.
    os_cache:
        Keep the lazily-computed ⟨o, s⟩ sorted views cached (the
        paper's design); ``False`` recomputes them per use (ablation).
    workers:
        Workers for the dependency-aware rule scheduler
        (:mod:`repro.core.scheduler`).  ``None`` (default) reads
        ``$REPRO_WORKERS`` (falling back to 1 — sequential), ``0``
        means all cores.  Engines with a memory ``tracer`` always run
        sequentially (the tracer records a single address stream).
    parallel_mode:
        Executor substrate for ``workers > 1``: ``'thread'``,
        ``'process'`` (shared-memory worker processes — the mode that
        scales the pure-Python backend past the GIL) or ``'auto'``
        (the scheduler's cost model picks sequential/thread/process
        per flush from the estimated work; see
        :meth:`ParallelRuleScheduler.decide`).  ``None`` (default)
        reads ``$REPRO_PARALLEL_MODE``, falling back to ``'auto'``.
    split_threshold:
        Estimated join-input pairs above which one rule firing is
        split into key-range shards that run as independent scheduler
        tasks (intra-rule parallelism; CAX-SCO over the type table is
        the motivating case).  ``None`` reads
        ``$REPRO_SPLIT_THRESHOLD`` (default 16384); ``0`` disables
        splitting.  Only parallel runs split.
    materialize_mode:
        ``'full'`` (default) materializes the whole closure;
        ``'hybrid'`` runs the LiteMat-style reduced catalogue — rules
        the hierarchy encoding absorbs (see :mod:`repro.litemat`)
        never fire, and :attr:`hybrid_view` composes their virtual
        answers back in at read time.  The engine's own ``query`` /
        ``triples`` accessors always read the *stored* tables; callers
        wanting entailment-complete hybrid reads go through
        :attr:`read_view` (the ``repro.Store`` facade does).
    """

    def __init__(
        self,
        ruleset: Union[str, List[Rule]] = "rdfs-default",
        *,
        algorithm: str = "auto",
        backend: Union[str, KernelBackend] = "auto",
        tracer=None,
        max_iterations: int = 10_000,
        os_cache: bool = True,
        workers: Optional[int] = None,
        parallel_mode: Optional[str] = None,
        split_threshold: Optional[int] = None,
        materialize_mode: str = "full",
    ):
        if isinstance(ruleset, str):
            self.rules: List[Rule] = get_ruleset(ruleset)
            self.ruleset_name = ruleset
        else:
            self.rules = list(ruleset)
            self.ruleset_name = "custom"
        self.dictionary = Dictionary()
        self.vocab = Vocab(self.dictionary)
        self.kernels = resolve_backend(backend, algorithm=algorithm)
        self.workers = 1 if tracer is not None else resolve_workers(workers)
        self.scheduler = ParallelRuleScheduler(
            self.rules,
            workers=self.workers,
            mode=parallel_mode,
            vocab=self.vocab,
            kernels=self.kernels,
            algorithm=algorithm,
            split_threshold=split_threshold,
        )
        self.main = TripleStore(
            algorithm=algorithm,
            tracer=tracer,
            cache_os=os_cache,
            backend=self.kernels,
        )
        self.algorithm = algorithm
        self.tracer = tracer
        self.max_iterations = max_iterations
        self.stats: Optional[MaterializationStats] = None
        self._materialized = False
        self._asserted: List[tuple] = []

        if materialize_mode not in MATERIALIZE_MODES:
            raise ValueError(
                f"unknown materialize mode {materialize_mode!r}; "
                f"expected one of {MATERIALIZE_MODES}"
            )
        self.materialize_mode = materialize_mode
        self._hybrid_plan: Optional[HybridPlan] = None
        self._reduced_scheduler: Optional[ParallelRuleScheduler] = None
        self._hybrid_encoding: Optional[HierarchyEncoding] = None
        self._hybrid_view: Optional[HybridTripleView] = None
        self._hybrid_fallback_reason: Optional[str] = None
        if materialize_mode == "hybrid":
            self._hybrid_plan = plan_hybrid(self.rules, self.ruleset_name)
            if self._hybrid_plan.absorbed:
                self._reduced_scheduler = ParallelRuleScheduler(
                    self._hybrid_plan.reduced_rules,
                    workers=self.workers,
                    mode=parallel_mode,
                    vocab=self.vocab,
                    kernels=self.kernels,
                    algorithm=algorithm,
                    split_threshold=split_threshold,
                )

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_triples(self, triples: Iterable[Triple]) -> int:
        """Encode and bulk-load decoded triples; returns the count added."""
        triple_list = list(triples)
        _, encoded = encode_dataset(triple_list, self.dictionary)
        self._asserted.extend(encoded)
        self.main.add_encoded(encoded)
        self._materialized = False
        return len(triple_list)

    def load_file(self, path: str) -> int:
        """Parse and load an N-Triples file."""
        return self.load_triples(parse_file(path))

    def load_encoded_pairs(self, property_id: int, flat_pairs) -> None:
        """Low-level loader for already-encoded pair data (benchmarks)."""
        self.main.add_pairs(property_id, flat_pairs)
        self._materialized = False

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def materialize(
        self, *, timeout_seconds: Optional[float] = None
    ) -> MaterializationStats:
        """Run the closure pre-pass and the fixed point; returns stats.

        Idempotent re-entry is a cheap no-op: when the store is already
        materialized and nothing was loaded since, the fixed point is
        skipped entirely and a zero-work stats record is returned
        (``self.stats`` keeps the stats of the last *real* run).

        With ``materialize_mode='hybrid'`` the run goes through the
        reduced-catalogue flush (:meth:`_materialize_hybrid`), falling
        back to the full catalogue when the planner absorbed nothing or
        a schema guard trips.

        Raises :class:`MaterializationTimeout` when ``timeout_seconds``
        elapses (checked between iterations).
        """
        if self._materialized:
            return MaterializationStats(
                n_input=self.main.n_triples,
                n_total=self.main.n_triples,
                workers=self.workers,
                parallel_mode=self.parallel_mode,
                n_waves=self.scheduler.n_waves,
                materialize_mode=self.materialize_mode,
                absorbed_rules=list(self.absorbed_rule_names),
                hybrid_fallback=self._hybrid_fallback_reason,
            )
        if self.materialize_mode == "hybrid":
            return self._materialize_hybrid(timeout_seconds=timeout_seconds)
        return self._materialize_full(timeout_seconds=timeout_seconds)

    def _materialize_full(
        self, *, timeout_seconds: Optional[float] = None
    ) -> MaterializationStats:
        """The full-catalogue flush (Algorithm 1 verbatim)."""
        stats = MaterializationStats(
            n_input=self.main.n_triples,
            workers=self.workers,
            parallel_mode=self.parallel_mode,
            n_waves=self.scheduler.n_waves,
        )
        started = time.perf_counter()
        deadline = None if timeout_seconds is None else started + timeout_seconds

        # Line 2: transitivity closures on the dedicated layout.
        closure_started = time.perf_counter()
        prepass_buffers = InferredBuffers()
        prepass_ctx = RuleContext(
            main=self.main,
            new=self.main,
            out=prepass_buffers,
            vocab=self.vocab,
            kernels=self.kernels,
        )
        theta_rules = [rule for rule in self.rules if rule.rule_class == "theta"]
        for rule in theta_rules:
            stats.closure_pairs += rule.prepass(prepass_ctx)
        if prepass_buffers:
            self.main.merge_inferred(prepass_buffers)
        stats.closure_seconds = time.perf_counter() - closure_started

        # Line 3: the first iteration sees everything as new.
        new = self.main
        iteration = 0

        # Lines 4-8: fixed point, rules fired through the wave scheduler.
        # The executor pick is decided up front from the committed
        # snapshot; session() may downgrade the decision in place (a
        # picked process substrate that cannot start degrades to
        # threads), so the stats read it *after* the session is live —
        # they record what the run actually used.
        decision = self.scheduler.decide(self.main, new)
        with self.scheduler.session(decision) as executor:
            stats.parallel_mode = decision.mode
            stats.parallel_fallback = decision.fallback
            stats.parallel_decision = decision.as_dict()
            while new:
                iteration += 1
                if iteration > self.max_iterations:
                    raise FixedPointError(
                        f"no fixed point after {self.max_iterations} "
                        f"iterations (workers={self.workers}, "
                        f"mode={self.parallel_mode})"
                    )
                if deadline is not None and time.perf_counter() > deadline:
                    raise MaterializationTimeout(
                        f"inferray: timeout after {timeout_seconds}s "
                        f"(iteration {iteration}, workers={self.workers}, "
                        f"mode={self.parallel_mode})"
                    )
                infer_started = time.perf_counter()
                outcome = self.scheduler.run_iteration(
                    main=self.main,
                    new=new,
                    vocab=self.vocab,
                    kernels=self.kernels,
                    iteration=iteration,
                    theta_prepass_done=bool(theta_rules),
                    executor=executor,
                )
                stats.inference_seconds += (
                    time.perf_counter() - infer_started
                )
                self._accumulate_outcome(stats, outcome)

                merge_started = time.perf_counter()
                new = self.main.merge_inferred(outcome.out)
                stats.merge_seconds += time.perf_counter() - merge_started

        # Re-read after the loop: mid-wave self-healing may have
        # degraded the decision while iterations ran.
        stats.parallel_mode = decision.mode
        stats.parallel_fallback = decision.fallback
        stats.parallel_decision = decision.as_dict()
        stats.iterations = iteration
        stats.n_total = self.main.n_triples
        stats.n_inferred = stats.n_total - stats.n_input
        stats.total_seconds = time.perf_counter() - started
        self._finalize_parallel_stats(stats)
        self.stats = stats
        self._materialized = True
        return stats

    # ------------------------------------------------------------------
    # Hybrid (LiteMat-style) flush
    # ------------------------------------------------------------------
    def _hybrid_guard_reason(self) -> Optional[str]:
        """Why the stored schema forbids absorbing rules, or None.

        The encoding treats ``rdf:type``, ``rdfs:subClassOf/
        subPropertyOf`` and ``rdfs:domain/range`` as fixed vocabulary.
        Data that redefines that vocabulary — a sub-property of
        ``rdfs:subClassOf``, a domain declared on ``rdf:type`` — would
        route inference *into* the absorbed tables, so such inputs run
        the full catalogue instead (correct, just not reduced).
        """
        vocab = self.vocab
        reserved = {
            vocab.type,
            vocab.subClassOf,
            vocab.subPropertyOf,
            vocab.domain,
            vocab.range,
        }
        table = self.main.table(vocab.subPropertyOf)
        if table is not None:
            for subject, obj in table.iter_pairs():
                if subject in reserved or obj in reserved:
                    return (
                        "schema-of-schema input: a subPropertyOf row "
                        "names a reserved RDFS property"
                    )
        for attr in ("domain", "range"):
            table = self.main.table(vocab[attr])
            if table is not None:
                for prop, _ in table.iter_pairs():
                    if prop in reserved:
                        return (
                            f"{attr} declared on a reserved RDFS "
                            "property"
                        )
        return None

    def _build_hybrid_encoding(self) -> HierarchyEncoding:
        """Interval-encode the stored subClassOf/subPropertyOf graphs."""
        vocab = self.vocab
        subclass = self.main.table(vocab.subClassOf)
        subprop = self.main.table(vocab.subPropertyOf)
        return HierarchyEncoding(
            subclass.iter_pairs() if subclass is not None else (),
            subprop.iter_pairs() if subprop is not None else (),
        )

    def _hierarchy_prepass(
        self, encoding: HierarchyEncoding, out: InferredBuffers
    ) -> int:
        """Type the members of sub-property tables under domain/range.

        The one interaction between absorbed and materialized rules the
        planner exempts: with PRP-SPO1 (or SCM-DOM2/RNG2) absorbed,
        PRP-DOM/PRP-RNG never see the data that only *virtually* flows
        into a declared property — so this schema-sized pass emits
        ``type(s, c)`` for every subject (object) of each strict
        sub-property of a domain- (range-) carrying property.  The
        virtual ``rdf:type`` expansion supplies the superclass closure
        of these rows, completing the decomposition of the full-mode
        firings.  Rows are genuine entailments, so re-running the pass
        on incremental flushes is idempotent (monotone).
        """
        plan = self._hybrid_plan
        vocab = self.vocab
        kernels = self.kernels
        jobs = []
        if plan.copy_data or plan.expand_domain_properties:
            jobs.append((vocab.domain, True))
        if plan.copy_data or plan.expand_range_properties:
            jobs.append((vocab.range, False))
        emitted = 0
        for schema_pid, use_subjects in jobs:
            schema = self.main.table(schema_pid)
            if schema is None:
                continue
            for prop, cls in schema.iter_pairs():
                for sub in encoding.subproperties(prop):
                    if sub == prop:
                        continue  # cycles: own table is handled live
                    table = self.main.table(sub)
                    if table is None or not table.n_pairs:
                        continue
                    members = kernels.distinct_evens(
                        table.pairs if use_subjects else table.os_pairs()
                    )
                    if len(members):
                        out.extend(
                            vocab.type,
                            kernels.pair_with_constant(members, cls),
                        )
                        emitted += len(members)
        return emitted

    def _materialize_hybrid(
        self, *, timeout_seconds: Optional[float] = None
    ) -> MaterializationStats:
        """Reduced-catalogue flush: encode, pre-pass, fixed point, view."""
        self._hybrid_view = None
        self._hybrid_encoding = None
        plan = self._hybrid_plan
        if self._reduced_scheduler is None or not plan.absorbed:
            reason = (
                f"ruleset {self.ruleset_name!r} has no absorbable rules"
            )
        else:
            reason = self._hybrid_guard_reason()
        if reason is not None:
            self._hybrid_fallback_reason = reason
            stats = self._materialize_full(timeout_seconds=timeout_seconds)
            stats.materialize_mode = "hybrid"
            stats.absorbed_rules = []
            stats.hybrid_fallback = reason
            return stats

        self._hybrid_fallback_reason = None
        scheduler = self._reduced_scheduler
        stats = MaterializationStats(
            n_input=self.main.n_triples,
            workers=self.workers,
            parallel_mode=scheduler.effective_mode,
            n_waves=scheduler.n_waves,
            materialize_mode="hybrid",
            absorbed_rules=list(plan.absorbed),
        )
        started = time.perf_counter()
        deadline = (
            None if timeout_seconds is None else started + timeout_seconds
        )

        # Line 2 equivalents: the interval encoding stands in for the
        # absorbed θ closures; the hierarchy pre-pass covers the
        # absorbed half of PRP-DOM/PRP-RNG; any θ rule still in the
        # reduced catalogue closes its properties as usual.
        closure_started = time.perf_counter()
        encoding = self._build_hybrid_encoding()
        stats.closure_pairs += (
            encoding.classes_up.n_reach_pairs()
            + encoding.props_up.n_reach_pairs()
        )
        prepass_buffers = InferredBuffers()
        self._hierarchy_prepass(encoding, prepass_buffers)
        prepass_ctx = RuleContext(
            main=self.main,
            new=self.main,
            out=prepass_buffers,
            vocab=self.vocab,
            kernels=self.kernels,
        )
        theta_rules = [
            rule
            for rule in plan.reduced_rules
            if rule.rule_class == "theta"
        ]
        for rule in theta_rules:
            stats.closure_pairs += rule.prepass(prepass_ctx)
        if prepass_buffers:
            self.main.merge_inferred(prepass_buffers)
        stats.closure_seconds = time.perf_counter() - closure_started

        new = self.main
        iteration = 0
        decision = scheduler.decide(self.main, new)
        with scheduler.session(decision) as executor:
            stats.parallel_mode = decision.mode
            stats.parallel_fallback = decision.fallback
            stats.parallel_decision = decision.as_dict()
            while new:
                iteration += 1
                if iteration > self.max_iterations:
                    raise FixedPointError(
                        f"no fixed point after {self.max_iterations} "
                        f"iterations (workers={self.workers}, "
                        f"mode={scheduler.effective_mode})"
                    )
                if deadline is not None and time.perf_counter() > deadline:
                    raise MaterializationTimeout(
                        f"inferray: timeout after {timeout_seconds}s "
                        f"(iteration {iteration}, workers={self.workers}, "
                        f"mode={scheduler.effective_mode})"
                    )
                infer_started = time.perf_counter()
                outcome = scheduler.run_iteration(
                    main=self.main,
                    new=new,
                    vocab=self.vocab,
                    kernels=self.kernels,
                    iteration=iteration,
                    theta_prepass_done=True,
                    executor=executor,
                )
                stats.inference_seconds += (
                    time.perf_counter() - infer_started
                )
                self._accumulate_outcome(stats, outcome)

                merge_started = time.perf_counter()
                new = self.main.merge_inferred(outcome.out)
                stats.merge_seconds += time.perf_counter() - merge_started

        # Re-read after the loop: mid-wave self-healing may have
        # degraded the decision while iterations ran.
        stats.parallel_mode = decision.mode
        stats.parallel_fallback = decision.fallback
        stats.parallel_decision = decision.as_dict()
        stats.iterations = iteration
        stats.n_total = self.main.n_triples
        stats.n_inferred = stats.n_total - stats.n_input
        stats.total_seconds = time.perf_counter() - started
        self._finalize_parallel_stats(stats)
        self._hybrid_encoding = encoding
        self._hybrid_view = HybridTripleView(
            self.main, encoding, plan, self.vocab, self.kernels
        )
        self.stats = stats
        self._materialized = True
        return stats

    @property
    def hybrid_plan(self) -> Optional[HybridPlan]:
        """The planner's absorbed/materialized split (hybrid mode only)."""
        return self._hybrid_plan

    @property
    def hybrid_view(self) -> Optional[HybridTripleView]:
        """The virtual read view of the last hybrid flush.

        ``None`` in full mode, before the first flush, and when the
        flush fell back to the full catalogue (reads then see the
        fully materialized ``main`` store, which is already complete).
        """
        return self._hybrid_view

    @property
    def read_view(self):
        """What entailment-complete reads should consume: the hybrid
        virtual view when one is active, else ``main``.

        A pending (unflushed) load makes the view stale, so it only
        serves while the engine is materialized — callers flush first,
        exactly as they must for ``main`` itself.
        """
        if self._hybrid_view is not None and self._materialized:
            return self._hybrid_view
        return self.main

    @property
    def absorbed_rule_names(self) -> tuple:
        """Names of rules the *active* encoding absorbs (empty unless a
        hybrid view is live)."""
        if self._hybrid_view is None or self._hybrid_plan is None:
            return ()
        return self._hybrid_plan.absorbed

    @property
    def hybrid_fallback_reason(self) -> Optional[str]:
        """Why the last hybrid flush ran the full catalogue (or None)."""
        return self._hybrid_fallback_reason

    def mark_hybrid_fallback(self, reason: str) -> None:
        """Record an externally-decided fallback (persistence path)."""
        self._hybrid_view = None
        self._hybrid_encoding = None
        self._hybrid_fallback_reason = reason

    def hybrid_state_payload(self) -> Optional[dict]:
        """JSON-serializable hybrid state for persistence, or None."""
        if self._hybrid_view is None or self._hybrid_encoding is None:
            return None
        return {
            "absorbed": list(self._hybrid_plan.absorbed),
            "encoding": self._hybrid_encoding.to_payload(),
        }

    def adopt_hybrid_state(self, payload: dict) -> bool:
        """Re-activate a persisted hybrid view without re-materializing.

        Returns False (and marks the engine unmaterialized, so the next
        read re-flushes) when the persisted split does not match this
        engine's plan — e.g. a file saved by a different catalogue.
        """
        if self.materialize_mode != "hybrid" or self._hybrid_plan is None:
            return False
        absorbed = tuple(payload.get("absorbed", ()))
        if absorbed != self._hybrid_plan.absorbed:
            self._materialized = False
            return False
        self._hybrid_encoding = HierarchyEncoding.from_payload(
            payload["encoding"]
        )
        self._hybrid_fallback_reason = None
        self._hybrid_view = HybridTripleView(
            self.main,
            self._hybrid_encoding,
            self._hybrid_plan,
            self.vocab,
            self.kernels,
        )
        return True

    @property
    def parallel_mode(self) -> str:
        """The scheduler's effective executor substrate: 'sequential',
        'thread', 'process', or 'auto' before the first cost-model
        decision has been made."""
        return self.scheduler.effective_mode

    def close(self) -> None:
        """Release persistent worker pools and shared-memory segments.

        Idempotent, and the engine stays usable — the next parallel
        materialization lazily restarts its pool.  Dropping the last
        reference to an unclosed engine also reaps the pools (the
        scheduler registers a ``weakref.finalize``), but explicit close
        is deterministic and is what ``Store.close()`` calls.
        """
        self.scheduler.close()
        if self._reduced_scheduler is not None:
            self._reduced_scheduler.close()

    def _accumulate_outcome(self, stats, outcome) -> None:
        """Fold one scheduled iteration's observability into ``stats``."""
        for name, count in outcome.rule_counts.items():
            stats.per_rule[name] = stats.per_rule.get(name, 0) + count
        for name, shards in outcome.rule_shards.items():
            stats.rule_shards[name] = max(
                stats.rule_shards.get(name, 0), shards
            )
        for name, seconds in outcome.rule_seconds.items():
            stats.per_rule_seconds[name] = (
                stats.per_rule_seconds.get(name, 0.0) + seconds
            )
        for index, seconds in enumerate(outcome.wave_seconds):
            if index >= len(stats.per_wave_seconds):
                stats.per_wave_seconds.append(0.0)
            stats.per_wave_seconds[index] += seconds

    @staticmethod
    def _finalize_parallel_stats(stats) -> None:
        """Derive the busy-time and effective-speedup summary fields."""
        stats.rule_busy_seconds = sum(stats.per_rule_seconds.values())
        if stats.inference_seconds > 0 and stats.rule_busy_seconds > 0:
            stats.parallel_speedup = (
                stats.rule_busy_seconds / stats.inference_seconds
            )
        else:
            stats.parallel_speedup = 1.0

    def retract_and_rematerialize(
        self,
        triples: Iterable[Triple],
        *,
        timeout_seconds: Optional[float] = None,
    ) -> MaterializationStats:
        """Remove asserted triples and recompute the closure from scratch.

        Forward-chaining has no cheap deletion — "forward-chaining
        requires full materialization after deletion" (paper §1) — so
        this rebuilds the store from the surviving asserted triples and
        re-runs :meth:`materialize` (bounded by ``timeout_seconds``).
        Triples never asserted (inferred or unknown) are ignored.
        """
        to_remove = set()
        for triple in triples:
            subject_id = self.dictionary.id_of(triple.subject)
            property_id = self.dictionary.id_of(triple.predicate)
            object_id = self.dictionary.id_of(triple.object)
            if None not in (subject_id, property_id, object_id):
                to_remove.add((subject_id, property_id, object_id))
        surviving = [e for e in self._asserted if e not in to_remove]
        self._asserted = surviving
        self.main = TripleStore(
            algorithm=self.algorithm,
            tracer=self.tracer,
            cache_os=self.main.cache_os,
            backend=self.kernels,
        )
        self.main.add_encoded(surviving)
        self._materialized = False
        return self.materialize(timeout_seconds=timeout_seconds)

    @property
    def n_asserted(self) -> int:
        """Number of asserted (loaded) triples, duplicates included."""
        return len(self._asserted)

    @property
    def is_materialized(self) -> bool:
        """Whether the store currently holds a complete closure."""
        return self._materialized

    def asserted_encoded(self) -> List[tuple]:
        """The asserted (s, p, o) id triples, in load order.

        Diffing the closure against this list on *encoded* ids is how
        the Store facade computes the inferred-only view without
        decoding the whole closure.
        """
        return list(self._asserted)

    def restore(
        self,
        dictionary: Dictionary,
        asserted_encoded: Iterable[tuple],
        tables: Iterable[tuple],
        *,
        materialized: bool = True,
    ) -> None:
        """Adopt deserialized state (the Store persistence path).

        ``tables`` yields ``(property_id, flat_pairs)`` with each flat
        array already sorted-unique on ⟨s, o⟩ — they are installed
        without re-sorting, which is what makes reloading a saved
        closure O(read).  The previous store contents are discarded;
        ``self.stats`` is cleared (no materialization ran here).
        """
        self.dictionary = dictionary
        self.vocab = Vocab(dictionary)
        # Persistent worker pools carry the vocabulary they were
        # initialized with; adopting a new dictionary invalidates them,
        # so recycle the pools (they restart lazily with the new vocab).
        self.scheduler.vocab = self.vocab
        self.scheduler.close()
        if self._reduced_scheduler is not None:
            self._reduced_scheduler.vocab = self.vocab
            self._reduced_scheduler.close()
        self.main = TripleStore(
            algorithm=self.algorithm,
            tracer=self.tracer,
            cache_os=self.main.cache_os,
            backend=self.kernels,
        )
        for property_id, flat_pairs in tables:
            self.main.load_table(property_id, flat_pairs, presorted=True)
        self._asserted = [tuple(item) for item in asserted_encoded]
        self._materialized = bool(materialized)
        self._hybrid_view = None
        self._hybrid_encoding = None
        self._hybrid_fallback_reason = None
        self.stats = None

    def memory_bytes(self) -> int:
        """Bytes held by the store's pair arrays and caches."""
        return self.main.memory_bytes()

    def materialize_incremental(
        self,
        triples: Iterable[Triple],
        *,
        timeout_seconds: Optional[float] = None,
    ) -> MaterializationStats:
        """Add triples to an already-materialized store, semi-naively.

        Unlike ``load_triples() + materialize()`` — which re-fires every
        rule with ``new = main`` — this seeds the fixed point with only
        the genuinely-new delta, so an addition touching one property
        re-derives only what that delta can produce.  θ-rules handle the
        delta by re-closing the affected properties (paper §4.1: closure
        inputs never shrink, so re-closing is sound and idempotent).

        The engine must already be materialized; the result is
        identical to batch materialization of the union (tested).
        """
        if not self._materialized:
            raise RuntimeError(
                "materialize_incremental requires a prior materialize()"
            )
        if self.materialize_mode == "hybrid":
            # Semi-naive seeding cannot catch what a *schema* delta does
            # to the encoding (new subClassOf edges change every
            # absorbed answer) nor re-run the hierarchy pre-pass, so
            # hybrid additions re-fire the whole hybrid flush.  That is
            # still the reduced catalogue over the already-closed store
            # plus the delta — prepass rows are monotone entailments,
            # so the re-run is idempotent — and it re-checks the guards
            # against the updated schema.
            self._materialized = False
            triple_list = list(triples)
            _, encoded = encode_dataset(triple_list, self.dictionary)
            self._asserted.extend(encoded)
            seed = InferredBuffers()
            for subject, property_id, obj in encoded:
                seed.emit(property_id, subject, obj)
            self.main.merge_inferred(seed)
            return self._materialize_hybrid(timeout_seconds=timeout_seconds)
        # The closure is incomplete until the delta fixed point lands:
        # clear the flag so an abort (timeout) leaves the engine marked
        # stale and the next materialize() recovers instead of serving
        # a partially-updated closure as complete.
        self._materialized = False
        stats = MaterializationStats(
            n_input=self.main.n_triples,
            workers=self.workers,
            parallel_mode=self.parallel_mode,
            n_waves=self.scheduler.n_waves,
        )
        started = time.perf_counter()
        deadline = None if timeout_seconds is None else started + timeout_seconds

        triple_list = list(triples)
        _, encoded = encode_dataset(triple_list, self.dictionary)
        self._asserted.extend(encoded)
        seed = InferredBuffers()
        for subject, property_id, obj in encoded:
            seed.emit(property_id, subject, obj)
        new = self.main.merge_inferred(seed)

        iteration = 1  # start past the θ pre-pass skip: deltas must close
        # Decide *after* the delta merge: the estimate sees the real
        # (main, delta) shapes, so a small increment on a huge store
        # still picks the cheapest substrate for the delta's work.
        decision = self.scheduler.decide(self.main, new)
        with self.scheduler.session(decision) as executor:
            stats.parallel_mode = decision.mode
            stats.parallel_fallback = decision.fallback
            stats.parallel_decision = decision.as_dict()
            while new:
                iteration += 1
                if iteration > self.max_iterations:
                    raise FixedPointError(
                        f"no fixed point after {self.max_iterations} "
                        f"iterations (workers={self.workers}, "
                        f"mode={self.parallel_mode})"
                    )
                if deadline is not None and time.perf_counter() > deadline:
                    raise MaterializationTimeout(
                        f"inferray: incremental timeout after "
                        f"{timeout_seconds}s (workers={self.workers}, "
                        f"mode={self.parallel_mode})"
                    )
                infer_started = time.perf_counter()
                outcome = self.scheduler.run_iteration(
                    main=self.main,
                    new=new,
                    vocab=self.vocab,
                    kernels=self.kernels,
                    iteration=iteration,
                    theta_prepass_done=True,
                    executor=executor,
                )
                stats.inference_seconds += (
                    time.perf_counter() - infer_started
                )
                self._accumulate_outcome(stats, outcome)

                merge_started = time.perf_counter()
                new = self.main.merge_inferred(outcome.out)
                stats.merge_seconds += time.perf_counter() - merge_started

        stats.parallel_mode = decision.mode
        stats.parallel_fallback = decision.fallback
        stats.parallel_decision = decision.as_dict()
        stats.iterations = iteration - 1
        stats.n_total = self.main.n_triples
        stats.n_inferred = stats.n_total - stats.n_input
        stats.total_seconds = time.perf_counter() - started
        self._finalize_parallel_stats(stats)
        self._materialized = True
        return stats

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def n_triples(self) -> int:
        """Triples currently stored (input + materialized)."""
        return self.main.n_triples

    def __len__(self) -> int:
        return self.n_triples

    def triples(self) -> Iterator[Triple]:
        """Iterate every stored triple, decoded."""
        decode = self.dictionary.decode_triple
        for encoded in self.main.triples():
            yield decode(encoded)

    def encoded_triples(self) -> Iterator[tuple]:
        """Iterate every stored (s, p, o) id triple."""
        return self.main.triples()

    def query(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Decoded pattern query; ``None`` positions are wildcards.

        Unknown terms (never loaded nor derived) match nothing.  In
        hybrid mode this answers through :attr:`read_view`, so absorbed
        (virtual) entailments match like stored ones.
        """
        ids: List[Optional[int]] = []
        for term in (subject, predicate, obj):
            if term is None:
                ids.append(None)
            else:
                term_id = self.dictionary.id_of(term)
                if term_id is None:
                    return
                ids.append(term_id)
        decode = self.dictionary.decode_triple
        for encoded in self.read_view.query(ids[0], ids[1], ids[2]):
            yield decode(encoded)

    def contains(self, triple: Triple) -> bool:
        """Membership test for one decoded triple (read-view semantics,
        like :meth:`query`)."""
        subject_id = self.dictionary.id_of(triple.subject)
        property_id = self.dictionary.id_of(triple.predicate)
        object_id = self.dictionary.id_of(triple.object)
        if None in (subject_id, property_id, object_id):
            return False
        return (subject_id, property_id, object_id) in self.read_view
