"""InferrayEngine: the paper's Algorithm 1 over the vertical store.

The engine ties everything together:

1. **Load** — triples are dictionary-encoded (dense split numbering,
   with property promotion) and bulk-loaded into the ``main`` store,
   sorted and deduplicated per property.
2. **Transitivity closures** (line 2) — every θ-rule of the active
   ruleset closes its target properties with the Nuutila/interval
   machinery *before* the fixed point: subClassOf/subPropertyOf for the
   RDFS flavours, plus every ``owl:TransitiveProperty`` and the
   symmetric-transitive ``owl:sameAs`` for RDFS-Plus.
3. **Fixed point** (lines 3–8) — rules fire in bulk against
   (main × new), the inferred buffers are sorted/deduplicated and merged
   per property (Figure 5), producing the next ``new`` delta, until an
   iteration derives nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Union

from ..dictionary.encoding import Dictionary, encode_dataset
from ..kernels import KernelBackend, resolve_backend
from ..rdf.ntriples import parse_file
from ..rdf.terms import Term, Triple
from ..rules.rulesets import get_ruleset
from ..rules.spec import Rule, RuleContext, Vocab
from ..store.triple_store import InferredBuffers, TripleStore
from .scheduler import ParallelRuleScheduler, resolve_workers


class FixedPointError(RuntimeError):
    """Raised when the fixed point exceeds the iteration safety bound."""


class MaterializationTimeout(RuntimeError):
    """Raised when a materialization exceeds its wall-clock budget.

    All engines (Inferray and the baselines) raise this cooperatively so
    the benchmark harness can report timeouts the way the paper's tables
    mark them ('–').
    """


@dataclass
class MaterializationStats:
    """Outcome of one :meth:`InferrayEngine.materialize` run."""

    n_input: int = 0
    n_inferred: int = 0
    n_total: int = 0
    iterations: int = 0
    closure_pairs: int = 0
    closure_seconds: float = 0.0
    inference_seconds: float = 0.0
    merge_seconds: float = 0.0
    total_seconds: float = 0.0
    per_rule: Dict[str, int] = field(default_factory=dict)
    #: Workers the rule scheduler ran with (1 = sequential).
    workers: int = 1
    #: Executor substrate: 'sequential', 'thread' or 'process'.
    parallel_mode: str = "sequential"
    #: Waves in the scheduler's dependency stratification.
    n_waves: int = 0
    #: Rules that were split into key-range shards, with the largest
    #: shard count observed across iterations.
    rule_shards: Dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds per wave index, summed across iterations.
    per_wave_seconds: List[float] = field(default_factory=list)
    #: Per-rule firing seconds, summed across iterations.
    per_rule_seconds: Dict[str, float] = field(default_factory=dict)
    #: Summed per-rule busy time (the sequential-equivalent cost).
    rule_busy_seconds: float = 0.0
    #: Effective rule-firing concurrency: summed per-rule busy time over
    #: wall-clock inference time.  ~1.0 when sequential; approaches the
    #: worker count under ideal scaling.
    parallel_speedup: float = 1.0

    @property
    def triples_per_second(self) -> float:
        """Inferred-triple throughput over the whole materialization."""
        if self.total_seconds <= 0:
            return 0.0
        return self.n_inferred / self.total_seconds


class InferrayEngine:
    """Forward-chaining materialization with sort-merge-join inference.

    Parameters
    ----------
    ruleset:
        A ruleset name ('rho-df', 'rdfs-default', 'rdfs-full',
        'rdfs-plus', 'rdfs-plus-full') or an explicit list of
        :class:`repro.rules.Rule` instances.
    algorithm:
        Scalar pair-sort algorithm: 'auto' (the paper's counting/
        MSDA-radix operating-range dispatch), or forced 'counting' /
        'radix' / 'timsort' for ablations.  Forcing one pins
        ``backend='auto'`` to the pure-Python kernels, where the choice
        is observable.
    backend:
        Kernel backend the store and rule executors run on: 'auto'
        (NumPy when available, else pure Python), 'python', 'numpy', or
        a :class:`repro.kernels.KernelBackend` instance.
    tracer:
        Optional memory tracer (see :mod:`repro.memsim`) that receives
        table-level operation events for the Figure-7/8 experiments.
    max_iterations:
        Safety bound on fixed-point iterations.
    os_cache:
        Keep the lazily-computed ⟨o, s⟩ sorted views cached (the
        paper's design); ``False`` recomputes them per use (ablation).
    workers:
        Workers for the dependency-aware rule scheduler
        (:mod:`repro.core.scheduler`).  ``None`` (default) reads
        ``$REPRO_WORKERS`` (falling back to 1 — sequential), ``0``
        means all cores.  Engines with a memory ``tracer`` always run
        sequentially (the tracer records a single address stream).
    parallel_mode:
        Executor substrate for ``workers > 1``: ``'thread'``,
        ``'process'`` (shared-memory worker processes — the mode that
        scales the pure-Python backend past the GIL) or ``'auto'``
        (process for the python backend, threads for numpy).  ``None``
        (default) reads ``$REPRO_PARALLEL_MODE``, falling back to
        ``'auto'``.
    split_threshold:
        Estimated join-input pairs above which one rule firing is
        split into key-range shards that run as independent scheduler
        tasks (intra-rule parallelism; CAX-SCO over the type table is
        the motivating case).  ``None`` reads
        ``$REPRO_SPLIT_THRESHOLD`` (default 16384); ``0`` disables
        splitting.  Only parallel runs split.
    """

    def __init__(
        self,
        ruleset: Union[str, List[Rule]] = "rdfs-default",
        *,
        algorithm: str = "auto",
        backend: Union[str, KernelBackend] = "auto",
        tracer=None,
        max_iterations: int = 10_000,
        os_cache: bool = True,
        workers: Optional[int] = None,
        parallel_mode: Optional[str] = None,
        split_threshold: Optional[int] = None,
    ):
        if isinstance(ruleset, str):
            self.rules: List[Rule] = get_ruleset(ruleset)
            self.ruleset_name = ruleset
        else:
            self.rules = list(ruleset)
            self.ruleset_name = "custom"
        self.dictionary = Dictionary()
        self.vocab = Vocab(self.dictionary)
        self.kernels = resolve_backend(backend, algorithm=algorithm)
        self.workers = 1 if tracer is not None else resolve_workers(workers)
        self.scheduler = ParallelRuleScheduler(
            self.rules,
            workers=self.workers,
            mode=parallel_mode,
            vocab=self.vocab,
            kernels=self.kernels,
            algorithm=algorithm,
            split_threshold=split_threshold,
        )
        self.main = TripleStore(
            algorithm=algorithm,
            tracer=tracer,
            cache_os=os_cache,
            backend=self.kernels,
        )
        self.algorithm = algorithm
        self.tracer = tracer
        self.max_iterations = max_iterations
        self.stats: Optional[MaterializationStats] = None
        self._materialized = False
        self._asserted: List[tuple] = []

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    def load_triples(self, triples: Iterable[Triple]) -> int:
        """Encode and bulk-load decoded triples; returns the count added."""
        triple_list = list(triples)
        _, encoded = encode_dataset(triple_list, self.dictionary)
        self._asserted.extend(encoded)
        self.main.add_encoded(encoded)
        self._materialized = False
        return len(triple_list)

    def load_file(self, path: str) -> int:
        """Parse and load an N-Triples file."""
        return self.load_triples(parse_file(path))

    def load_encoded_pairs(self, property_id: int, flat_pairs) -> None:
        """Low-level loader for already-encoded pair data (benchmarks)."""
        self.main.add_pairs(property_id, flat_pairs)
        self._materialized = False

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------
    def materialize(
        self, *, timeout_seconds: Optional[float] = None
    ) -> MaterializationStats:
        """Run the closure pre-pass and the fixed point; returns stats.

        Idempotent re-entry is a cheap no-op: when the store is already
        materialized and nothing was loaded since, the fixed point is
        skipped entirely and a zero-work stats record is returned
        (``self.stats`` keeps the stats of the last *real* run).

        Raises :class:`MaterializationTimeout` when ``timeout_seconds``
        elapses (checked between iterations).
        """
        if self._materialized:
            return MaterializationStats(
                n_input=self.main.n_triples,
                n_total=self.main.n_triples,
                workers=self.workers,
                parallel_mode=self.parallel_mode,
                n_waves=self.scheduler.n_waves,
            )
        stats = MaterializationStats(
            n_input=self.main.n_triples,
            workers=self.workers,
            parallel_mode=self.parallel_mode,
            n_waves=self.scheduler.n_waves,
        )
        started = time.perf_counter()
        deadline = None if timeout_seconds is None else started + timeout_seconds

        # Line 2: transitivity closures on the dedicated layout.
        closure_started = time.perf_counter()
        prepass_buffers = InferredBuffers()
        prepass_ctx = RuleContext(
            main=self.main,
            new=self.main,
            out=prepass_buffers,
            vocab=self.vocab,
            kernels=self.kernels,
        )
        theta_rules = [rule for rule in self.rules if rule.rule_class == "theta"]
        for rule in theta_rules:
            stats.closure_pairs += rule.prepass(prepass_ctx)
        if prepass_buffers:
            self.main.merge_inferred(prepass_buffers)
        stats.closure_seconds = time.perf_counter() - closure_started

        # Line 3: the first iteration sees everything as new.
        new = self.main
        iteration = 0

        # Lines 4-8: fixed point, rules fired through the wave scheduler.
        with self.scheduler.session() as executor:
            # Re-read after session start: an auto-derived process mode
            # may have fallen back to threads.
            stats.parallel_mode = self.parallel_mode
            while new:
                iteration += 1
                if iteration > self.max_iterations:
                    raise FixedPointError(
                        f"no fixed point after {self.max_iterations} "
                        f"iterations (workers={self.workers}, "
                        f"mode={self.parallel_mode})"
                    )
                if deadline is not None and time.perf_counter() > deadline:
                    raise MaterializationTimeout(
                        f"inferray: timeout after {timeout_seconds}s "
                        f"(iteration {iteration}, workers={self.workers}, "
                        f"mode={self.parallel_mode})"
                    )
                infer_started = time.perf_counter()
                outcome = self.scheduler.run_iteration(
                    main=self.main,
                    new=new,
                    vocab=self.vocab,
                    kernels=self.kernels,
                    iteration=iteration,
                    theta_prepass_done=bool(theta_rules),
                    executor=executor,
                )
                stats.inference_seconds += (
                    time.perf_counter() - infer_started
                )
                self._accumulate_outcome(stats, outcome)

                merge_started = time.perf_counter()
                new = self.main.merge_inferred(outcome.out)
                stats.merge_seconds += time.perf_counter() - merge_started

        stats.iterations = iteration
        stats.n_total = self.main.n_triples
        stats.n_inferred = stats.n_total - stats.n_input
        stats.total_seconds = time.perf_counter() - started
        self._finalize_parallel_stats(stats)
        self.stats = stats
        self._materialized = True
        return stats

    @property
    def parallel_mode(self) -> str:
        """The scheduler's effective executor substrate
        ('sequential', 'thread' or 'process')."""
        return self.scheduler.effective_mode

    def _accumulate_outcome(self, stats, outcome) -> None:
        """Fold one scheduled iteration's observability into ``stats``."""
        for name, count in outcome.rule_counts.items():
            stats.per_rule[name] = stats.per_rule.get(name, 0) + count
        for name, shards in outcome.rule_shards.items():
            stats.rule_shards[name] = max(
                stats.rule_shards.get(name, 0), shards
            )
        for name, seconds in outcome.rule_seconds.items():
            stats.per_rule_seconds[name] = (
                stats.per_rule_seconds.get(name, 0.0) + seconds
            )
        for index, seconds in enumerate(outcome.wave_seconds):
            if index >= len(stats.per_wave_seconds):
                stats.per_wave_seconds.append(0.0)
            stats.per_wave_seconds[index] += seconds

    @staticmethod
    def _finalize_parallel_stats(stats) -> None:
        """Derive the busy-time and effective-speedup summary fields."""
        stats.rule_busy_seconds = sum(stats.per_rule_seconds.values())
        if stats.inference_seconds > 0 and stats.rule_busy_seconds > 0:
            stats.parallel_speedup = (
                stats.rule_busy_seconds / stats.inference_seconds
            )
        else:
            stats.parallel_speedup = 1.0

    def retract_and_rematerialize(
        self,
        triples: Iterable[Triple],
        *,
        timeout_seconds: Optional[float] = None,
    ) -> MaterializationStats:
        """Remove asserted triples and recompute the closure from scratch.

        Forward-chaining has no cheap deletion — "forward-chaining
        requires full materialization after deletion" (paper §1) — so
        this rebuilds the store from the surviving asserted triples and
        re-runs :meth:`materialize` (bounded by ``timeout_seconds``).
        Triples never asserted (inferred or unknown) are ignored.
        """
        to_remove = set()
        for triple in triples:
            subject_id = self.dictionary.id_of(triple.subject)
            property_id = self.dictionary.id_of(triple.predicate)
            object_id = self.dictionary.id_of(triple.object)
            if None not in (subject_id, property_id, object_id):
                to_remove.add((subject_id, property_id, object_id))
        surviving = [e for e in self._asserted if e not in to_remove]
        self._asserted = surviving
        self.main = TripleStore(
            algorithm=self.algorithm,
            tracer=self.tracer,
            cache_os=self.main.cache_os,
            backend=self.kernels,
        )
        self.main.add_encoded(surviving)
        self._materialized = False
        return self.materialize(timeout_seconds=timeout_seconds)

    @property
    def n_asserted(self) -> int:
        """Number of asserted (loaded) triples, duplicates included."""
        return len(self._asserted)

    @property
    def is_materialized(self) -> bool:
        """Whether the store currently holds a complete closure."""
        return self._materialized

    def asserted_encoded(self) -> List[tuple]:
        """The asserted (s, p, o) id triples, in load order.

        Diffing the closure against this list on *encoded* ids is how
        the Store facade computes the inferred-only view without
        decoding the whole closure.
        """
        return list(self._asserted)

    def restore(
        self,
        dictionary: Dictionary,
        asserted_encoded: Iterable[tuple],
        tables: Iterable[tuple],
        *,
        materialized: bool = True,
    ) -> None:
        """Adopt deserialized state (the Store persistence path).

        ``tables`` yields ``(property_id, flat_pairs)`` with each flat
        array already sorted-unique on ⟨s, o⟩ — they are installed
        without re-sorting, which is what makes reloading a saved
        closure O(read).  The previous store contents are discarded;
        ``self.stats`` is cleared (no materialization ran here).
        """
        self.dictionary = dictionary
        self.vocab = Vocab(dictionary)
        self.main = TripleStore(
            algorithm=self.algorithm,
            tracer=self.tracer,
            cache_os=self.main.cache_os,
            backend=self.kernels,
        )
        for property_id, flat_pairs in tables:
            self.main.load_table(property_id, flat_pairs, presorted=True)
        self._asserted = [tuple(item) for item in asserted_encoded]
        self._materialized = bool(materialized)
        self.stats = None

    def memory_bytes(self) -> int:
        """Bytes held by the store's pair arrays and caches."""
        return self.main.memory_bytes()

    def materialize_incremental(
        self,
        triples: Iterable[Triple],
        *,
        timeout_seconds: Optional[float] = None,
    ) -> MaterializationStats:
        """Add triples to an already-materialized store, semi-naively.

        Unlike ``load_triples() + materialize()`` — which re-fires every
        rule with ``new = main`` — this seeds the fixed point with only
        the genuinely-new delta, so an addition touching one property
        re-derives only what that delta can produce.  θ-rules handle the
        delta by re-closing the affected properties (paper §4.1: closure
        inputs never shrink, so re-closing is sound and idempotent).

        The engine must already be materialized; the result is
        identical to batch materialization of the union (tested).
        """
        if not self._materialized:
            raise RuntimeError(
                "materialize_incremental requires a prior materialize()"
            )
        # The closure is incomplete until the delta fixed point lands:
        # clear the flag so an abort (timeout) leaves the engine marked
        # stale and the next materialize() recovers instead of serving
        # a partially-updated closure as complete.
        self._materialized = False
        stats = MaterializationStats(
            n_input=self.main.n_triples,
            workers=self.workers,
            parallel_mode=self.parallel_mode,
            n_waves=self.scheduler.n_waves,
        )
        started = time.perf_counter()
        deadline = None if timeout_seconds is None else started + timeout_seconds

        triple_list = list(triples)
        _, encoded = encode_dataset(triple_list, self.dictionary)
        self._asserted.extend(encoded)
        seed = InferredBuffers()
        for subject, property_id, obj in encoded:
            seed.emit(property_id, subject, obj)
        new = self.main.merge_inferred(seed)

        iteration = 1  # start past the θ pre-pass skip: deltas must close
        with self.scheduler.session() as executor:
            stats.parallel_mode = self.parallel_mode
            while new:
                iteration += 1
                if iteration > self.max_iterations:
                    raise FixedPointError(
                        f"no fixed point after {self.max_iterations} "
                        f"iterations (workers={self.workers}, "
                        f"mode={self.parallel_mode})"
                    )
                if deadline is not None and time.perf_counter() > deadline:
                    raise MaterializationTimeout(
                        f"inferray: incremental timeout after "
                        f"{timeout_seconds}s (workers={self.workers}, "
                        f"mode={self.parallel_mode})"
                    )
                infer_started = time.perf_counter()
                outcome = self.scheduler.run_iteration(
                    main=self.main,
                    new=new,
                    vocab=self.vocab,
                    kernels=self.kernels,
                    iteration=iteration,
                    theta_prepass_done=True,
                    executor=executor,
                )
                stats.inference_seconds += (
                    time.perf_counter() - infer_started
                )
                self._accumulate_outcome(stats, outcome)

                merge_started = time.perf_counter()
                new = self.main.merge_inferred(outcome.out)
                stats.merge_seconds += time.perf_counter() - merge_started

        stats.iterations = iteration - 1
        stats.n_total = self.main.n_triples
        stats.n_inferred = stats.n_total - stats.n_input
        stats.total_seconds = time.perf_counter() - started
        self._finalize_parallel_stats(stats)
        self._materialized = True
        return stats

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def n_triples(self) -> int:
        """Triples currently stored (input + materialized)."""
        return self.main.n_triples

    def __len__(self) -> int:
        return self.n_triples

    def triples(self) -> Iterator[Triple]:
        """Iterate every stored triple, decoded."""
        decode = self.dictionary.decode_triple
        for encoded in self.main.triples():
            yield decode(encoded)

    def encoded_triples(self) -> Iterator[tuple]:
        """Iterate every stored (s, p, o) id triple."""
        return self.main.triples()

    def query(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ) -> Iterator[Triple]:
        """Decoded pattern query; ``None`` positions are wildcards.

        Unknown terms (never loaded nor derived) match nothing.
        """
        ids: List[Optional[int]] = []
        for term in (subject, predicate, obj):
            if term is None:
                ids.append(None)
            else:
                term_id = self.dictionary.id_of(term)
                if term_id is None:
                    return
                ids.append(term_id)
        decode = self.dictionary.decode_triple
        for encoded in self.main.query(ids[0], ids[1], ids[2]):
            yield decode(encoded)

    def contains(self, triple: Triple) -> bool:
        """Membership test for one decoded triple."""
        subject_id = self.dictionary.id_of(triple.subject)
        property_id = self.dictionary.id_of(triple.predicate)
        object_id = self.dictionary.id_of(triple.object)
        if None in (subject_id, property_id, object_id):
            return False
        return (subject_id, property_id, object_id) in self.main
