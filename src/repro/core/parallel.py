"""Process-based shared-memory parallel execution plumbing.

The thread scheduler (:mod:`repro.core.scheduler`) is GIL-serialized on
the pure-Python kernel backend.  This module provides everything the
scheduler needs to run a wave's rule firings in **worker processes**
instead, without pickling the store:

* **Export** — committed pair arrays are plain host-order int64
  buffers (the persistence wire format already proves they serialize
  trivially), so :class:`SharedStoreExporter` copies each property
  table once into a ``multiprocessing.shared_memory`` segment and
  reuses the segment for as long as the table's committed array object
  is unchanged (committed arrays are replaced wholesale, never mutated
  in place, so object identity is a sound version tag).
* **Attach** — workers rebuild read-only :class:`TripleStore` views
  over the segments with ``kernels.from_buffer`` (zero-copy on both
  backends) and cache one store generation per Algorithm-1 role, so
  the ⟨o, s⟩ views a rule materializes are computed once per worker
  and iteration, not once per task.
* **Results** — each task's private
  :class:`~repro.store.triple_store.InferredBuffers` goes back as one
  shared-memory segment plus a ``(property_id, n_values)`` manifest;
  the parent absorbs the segments in catalogue order, preserving the
  byte-identical-closure-for-any-worker-count guarantee (the Figure-5
  sort+dedup makes the commit a pure function of the emitted set).
* **Spawn safety** — the worker initializer and task entrypoint are
  module-level functions; workers receive the rule list (pickled
  executor instances), the resolved vocabulary ids and the kernel
  backend *name*, and rebuild local state in ``_worker_init``.  Both
  the ``fork`` and ``spawn`` start methods work (CI runs both).

Mode selection (:func:`resolve_parallel_mode`): ``"process"`` /
``"thread"`` force an executor; ``"auto"`` (the default) picks
processes exactly where threads cannot scale — the pure-Python
backend — and threads for the NumPy backend, whose kernels release
the GIL and skip the export memcpy.
"""

from __future__ import annotations

import os
import pickle
import sys
import warnings
from array import array
from multiprocessing import get_context, resource_tracker, shared_memory
from typing import Dict, List, Optional, Sequence, Tuple

from ..faults import fire as _fire_fault
from ..kernels import KernelBackend, resolve_backend
from ..rules.spec import Rule, RuleContext, Vocab
from ..store.triple_store import InferredBuffers, TripleStore

__all__ = [
    "PARALLEL_MODES",
    "PARALLEL_MODE_ENV",
    "SPLIT_THRESHOLD_ENV",
    "START_METHOD_ENV",
    "DEFAULT_SPLIT_THRESHOLD",
    "ProcessModeUnavailable",
    "ProcessSession",
    "SharedStoreExporter",
    "attach_store",
    "buffers_to_segment",
    "discard_result_segment",
    "process_mode_supported",
    "resolve_parallel_mode",
    "resolve_split_threshold",
    "segment_to_buffers",
]

#: Accepted values for the ``parallel_mode`` knobs.
PARALLEL_MODES = ("auto", "thread", "process")

#: Environment default for the execution mode (used when ``mode=None``).
PARALLEL_MODE_ENV = "REPRO_PARALLEL_MODE"

#: Environment override for the intra-rule split threshold (pairs).
SPLIT_THRESHOLD_ENV = "REPRO_SPLIT_THRESHOLD"

#: Environment override for the multiprocessing start method
#: (``fork`` / ``spawn`` / ``forkserver``; empty = platform default).
START_METHOD_ENV = "REPRO_MP_START_METHOD"

#: Estimated join-input pairs above which a splittable rule firing is
#: sharded across workers (CAX-SCO over a large type table is the
#: motivating case — one giant rule dominating a wave's critical path).
DEFAULT_SPLIT_THRESHOLD = 16_384


class ProcessModeUnavailable(RuntimeError):
    """Process execution cannot be provided in this configuration."""


def process_mode_supported() -> bool:
    """Whether this platform can run the process executor at all.

    Requires POSIX shared memory: result segments are written by a
    worker, closed there, and attached by name from the parent — a
    handoff only filesystem-backed (``shm_open``) names survive.  On
    Windows a named mapping dies with its last handle, so process mode
    is unavailable and ``auto`` resolves to threads.
    """
    if sys.platform in ("emscripten", "wasi"):
        return False
    return _shm_unlink is not None


def resolve_parallel_mode(
    mode: Optional[str],
    *,
    backend_name: Optional[str] = None,
) -> str:
    """Normalize a ``parallel_mode`` request.

    ``None`` reads :data:`PARALLEL_MODE_ENV` (defaulting to ``auto``);
    an unknown value from the environment warns and falls back to
    ``auto`` (matching ``REPRO_WORKERS``' forgiving parse), while an
    unknown value passed explicitly raises.  When ``backend_name`` is
    given, ``auto`` is eagerly resolved with the legacy backend
    dispatch — ``process`` on the pure-Python kernel backend (where
    threads are GIL-serialized), ``thread`` on vectorized backends;
    without it ``auto`` is returned unresolved so the caller's cost
    model can pick per materialization.  The caller applies the mode
    only when ``workers > 1``.
    """
    from_env = False
    if mode is None:
        mode = os.environ.get(PARALLEL_MODE_ENV, "").strip().lower() or "auto"
        from_env = True
    mode = mode.lower()
    if mode not in PARALLEL_MODES:
        if from_env:
            warnings.warn(
                f"{PARALLEL_MODE_ENV}={mode!r} is not one of "
                f"{PARALLEL_MODES}; using 'auto'",
                RuntimeWarning,
                stacklevel=2,
            )
            mode = "auto"
        else:
            raise ValueError(
                f"unknown parallel mode {mode!r}; expected one of "
                f"{PARALLEL_MODES}"
            )
    if mode == "auto" and backend_name is not None:
        if backend_name == "python" and process_mode_supported():
            return "process"
        return "thread"
    return mode


def resolve_split_threshold(threshold: Optional[int]) -> int:
    """Normalize the intra-rule split threshold (``0`` disables).

    ``None`` reads :data:`SPLIT_THRESHOLD_ENV`, falling back to
    :data:`DEFAULT_SPLIT_THRESHOLD`; non-numeric environment values
    warn and fall back rather than crash.
    """
    if threshold is None:
        raw = os.environ.get(SPLIT_THRESHOLD_ENV, "").strip()
        if not raw:
            return DEFAULT_SPLIT_THRESHOLD
        try:
            threshold = int(raw)
        except ValueError:
            warnings.warn(
                f"{SPLIT_THRESHOLD_ENV}={raw!r} is not an integer pair "
                f"count; using the default "
                f"({DEFAULT_SPLIT_THRESHOLD})",
                RuntimeWarning,
                stacklevel=2,
            )
            return DEFAULT_SPLIT_THRESHOLD
        if threshold < 0:
            warnings.warn(
                f"{SPLIT_THRESHOLD_ENV}={raw!r} is negative; treating "
                f"as 0 (splitting disabled)",
                RuntimeWarning,
                stacklevel=2,
            )
            return 0
    return max(0, int(threshold))


# ----------------------------------------------------------------------
# Shared-memory plumbing
# ----------------------------------------------------------------------
def _flat_to_bytes(flat) -> bytes:
    """Host-order raw bytes of any backend's flat int64 array.

    Segments never leave the machine, so no endianness normalization
    is needed (unlike the persistence format).
    """
    tobytes = getattr(flat, "tobytes", None)
    if tobytes is not None:  # array('q'), ndarray, memoryview
        return tobytes()
    fallback = array("q", (int(value) for value in flat))
    return fallback.tobytes()


#: Whether SharedMemory supports opting out of resource tracking
#: (CPython >= 3.13); probed lazily.
_SHM_SUPPORTS_TRACK: Optional[bool] = None


def _shm_supports_track() -> bool:
    global _SHM_SUPPORTS_TRACK
    if _SHM_SUPPORTS_TRACK is None:
        import inspect

        _SHM_SUPPORTS_TRACK = "track" in inspect.signature(
            shared_memory.SharedMemory.__init__
        ).parameters
    return _SHM_SUPPORTS_TRACK


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach an existing segment without resource-tracker involvement.

    Tracker registrations must stay strictly balanced per segment or
    the (fork-shared) tracker process logs KeyErrors and spurious
    "leaked shared_memory" warnings: this module's convention is that
    only the *creator* briefly registers (see :func:`_create_segment`)
    and every lifetime transition is managed manually.  On
    CPython >= 3.13 ``track=False`` expresses that directly; older
    versions register unconditionally on attach, so registration is
    suppressed for the duration of the constructor (safe: segments are
    only attached from a process's main thread).
    """
    _fire_fault("shm.attach", name)
    if _shm_supports_track():
        return shared_memory.SharedMemory(name=name, track=False)
    register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = register


def _create_segment(n_bytes: int) -> shared_memory.SharedMemory:
    """A fresh untracked segment of at least one byte.

    The creating process immediately unregisters the segment from its
    resource tracker and owns the unlink manually (a hard crash before
    unlink leaks the segment until reboot — the price of keeping the
    fork-shared tracker's bookkeeping balanced across processes).
    """
    shm = shared_memory.SharedMemory(create=True, size=max(1, n_bytes))
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception as error:  # pragma: no cover - tracker internals moved
        # Keep going (the segment works either way), but say so: a
        # failed unregister means the tracker's bookkeeping is now
        # unbalanced and teardown may log spurious leak warnings.
        warnings.warn(
            f"could not unregister shared-memory segment "
            f"{shm._name!r} from the resource tracker: {error!r}",
            RuntimeWarning,
        )
    return shm


try:  # POSIX: raw unlink without tracker side effects
    from _posixshmem import shm_unlink as _shm_unlink
except ImportError:  # pragma: no cover - Windows named mmaps
    _shm_unlink = None


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink, without touching the resource tracker.

    ``SharedMemory.unlink()`` also *unregisters* the name — but this
    module's segments are already disowned at creation (see
    :func:`_create_segment`), and segments created by a worker are
    unlinked by the parent, so going through ``unlink()`` would send
    unbalanced UNREGISTER messages to the (possibly shared) tracker.
    On Windows there is nothing to unlink; closing the last handle
    frees the mapping.
    """
    try:
        shm.close()
    except BufferError:  # pragma: no cover - exported views still alive
        return
    if _shm_unlink is not None:
        try:
            _shm_unlink(shm._name)
        except FileNotFoundError:
            pass


#: One exported table: (property_id, segment name, value count).
TableManifest = Tuple[int, str, int]


class SharedStoreExporter:
    """Incremental shared-memory mirror of one TripleStore role.

    ``export`` copies each non-empty property table into a segment and
    returns the manifest workers attach from.  Tables whose committed
    array is the *same object* as the previously exported one reuse
    their segment — across fixed-point iterations most of ``main`` is
    unchanged, so the per-iteration export cost tracks the delta, not
    the store size.  A strong reference to the exported array pins its
    identity (no id-reuse after garbage collection).
    """

    def __init__(self) -> None:
        #: property id → (exported array object, segment, n_values)
        self._tables: Dict[int, Tuple[object, object, int]] = {}
        #: Lifetime counters (observability: pool-persistence tests and
        #: the serving stats endpoint read these to prove segments are
        #: reused across incremental flushes, not re-copied).
        self.segments_created = 0
        self.segments_reused = 0

    def export(self, store: TripleStore) -> List[TableManifest]:
        manifest: List[TableManifest] = []
        live = set()
        for property_id, flat in store.table_arrays():
            live.add(property_id)
            cached = self._tables.get(property_id)
            if cached is not None and cached[0] is flat:
                _, shm, n_values = cached
                self.segments_reused += 1
            else:
                if cached is not None:
                    _release_segment(cached[1])
                # Compressed tables ship their encoded blocks verbatim
                # (self-describing stream; ``from_buffer`` sniffs the
                # magic on attach) — the export memcpy shrinks with the
                # same ratio as the resident closure.  The manifest's
                # n_values stays the *logical* value count either way.
                serialize = getattr(flat, "serialize", None)
                data = serialize() if serialize is not None \
                    else _flat_to_bytes(flat)
                shm = _create_segment(len(data))
                shm.buf[: len(data)] = data
                n_values = len(flat)
                self._tables[property_id] = (flat, shm, n_values)
                self.segments_created += 1
            manifest.append((property_id, shm.name, n_values))
        for property_id in list(self._tables):
            if property_id not in live:
                _release_segment(self._tables.pop(property_id)[1])
        return manifest

    def close(self) -> None:
        for _, shm, _ in self._tables.values():
            _release_segment(shm)
        self._tables.clear()


def attach_store(
    manifest: Sequence[TableManifest],
    *,
    kernels: KernelBackend,
    algorithm: str = "auto",
) -> Tuple[TripleStore, List[shared_memory.SharedMemory]]:
    """A read-only TripleStore over exported segments (worker side).

    Returns the store plus the attached segments, which the caller
    must keep alive while the store is in use and close afterwards.
    """
    store = TripleStore(algorithm=algorithm, backend=kernels)
    segments: List[shared_memory.SharedMemory] = []
    for property_id, name, n_values in manifest:
        shm = _attach_segment(name)
        segments.append(shm)
        store.attach_shared_table(
            property_id, kernels.from_buffer(shm.buf, n_values)
        )
    return store, segments


def buffers_to_segment(
    buffers: InferredBuffers,
) -> Tuple[Optional[str], List[Tuple[int, int]]]:
    """Serialize a task's output buffers into one shared segment.

    Returns ``(segment name, [(property_id, n_values), …])`` — or
    ``(None, [])`` when nothing was emitted.  The segment is created
    *disowned*: the parent (which absorbs it) unlinks it, so a worker
    exiting early never races the parent's reads.
    """
    parts: List[Tuple[int, int, bytes]] = []
    total = 0
    for property_id, chunks in buffers.chunk_items():
        blob = b"".join(_flat_to_bytes(chunk) for chunk in chunks)
        if not blob:
            continue
        parts.append((property_id, len(blob) // 8, blob))
        total += len(blob)
    if not total:
        return None, []
    shm = _create_segment(total)
    offset = 0
    entries: List[Tuple[int, int]] = []
    for property_id, n_values, blob in parts:
        shm.buf[offset: offset + len(blob)] = blob
        offset += len(blob)
        entries.append((property_id, n_values))
    name = shm.name
    shm.close()
    return name, entries


def discard_result_segment(name: str) -> None:
    """Release a worker output segment without reading it.

    Error-path cleanup: output segments are created *disowned* (no
    resource tracker), so when an iteration unwinds before absorbing a
    completed sibling task, the parent must still unlink its segment
    or it leaks until reboot.  Tolerates segments already released.
    """
    try:
        shm = _attach_segment(name)
    except FileNotFoundError:
        return
    _release_segment(shm)


def segment_to_buffers(
    name: str,
    entries: Sequence[Tuple[int, int]],
    out: InferredBuffers,
) -> None:
    """Absorb a worker's output segment into ``out`` (parent side).

    The pair data is copied into parent-owned ``array('q')`` chunks
    (the Figure-5 merge concatenates chunks anyway) and the segment is
    released immediately.
    """
    shm = _attach_segment(name)
    try:
        offset = 0
        for property_id, n_values in entries:
            chunk = array("q")
            chunk.frombytes(bytes(shm.buf[offset: offset + 8 * n_values]))
            offset += 8 * n_values
            if len(chunk):
                out.extend(property_id, chunk)
    finally:
        _release_segment(shm)


# ----------------------------------------------------------------------
# Worker process state and entrypoints (spawn-safe: module level)
# ----------------------------------------------------------------------
class _WorkerState:
    """Per-process state built once by the pool initializer."""

    def __init__(
        self,
        rules: Sequence[Rule],
        vocab_ids: Dict[str, int],
        backend_name: str,
        algorithm: str,
    ):
        self.rules = list(rules)
        vocab = Vocab.__new__(Vocab)
        vocab._ids = dict(vocab_ids)
        self.vocab = vocab
        self.kernels = resolve_backend(backend_name, algorithm=algorithm)
        self.algorithm = algorithm
        #: role → (manifest key, store, attached segments).  One cached
        #: generation per role; superseded generations are dropped at
        #: the next attach, after their store (and every view into the
        #: old segments) is released.
        self._stores: Dict[str, Tuple[tuple, TripleStore, list]] = {}

    def store_for(
        self, role: str, manifest: Sequence[TableManifest]
    ) -> TripleStore:
        key = tuple(manifest)
        cached = self._stores.get(role)
        if cached is not None and cached[0] == key:
            return cached[1]
        # Release this frame's reference before dropping, or the old
        # generation's views stay alive through the close calls.
        cached = None
        self._drop(role)
        store, segments = attach_store(
            manifest, kernels=self.kernels, algorithm=self.algorithm
        )
        self._stores[role] = (key, store, segments)
        return store

    def _drop(self, role: str) -> None:
        cached = self._stores.pop(role, None)
        if cached is None:
            return
        segments = cached[2]
        # Drop every reference to the store (and with it the tables'
        # zero-copy views into the segments) before closing.
        del cached
        for shm in segments:
            try:
                shm.close()
            except BufferError:  # pragma: no cover - view still alive
                pass

    def close(self) -> None:
        """Release every cached store generation (worker exit)."""
        for role in list(self._stores):
            self._drop(role)


_WORKER: Optional[_WorkerState] = None


def _worker_cleanup() -> None:
    """Release the worker's cached stores/segments at process exit.

    Registered as a :class:`multiprocessing.util.Finalize` (plain
    ``atexit`` does not run in multiprocessing children): releasing the
    store views *before* interpreter teardown keeps the segments'
    ``__del__`` from hitting live exported pointers.
    """
    global _WORKER
    state = _WORKER
    _WORKER = None
    if state is not None:
        state.close()


def _worker_init(
    rules: Sequence[Rule],
    vocab_ids: Dict[str, int],
    backend_name: str,
    algorithm: str,
) -> None:
    global _WORKER
    _WORKER = _WorkerState(rules, vocab_ids, backend_name, algorithm)
    from multiprocessing import util

    util.Finalize(None, _worker_cleanup, exitpriority=100)


def _worker_fire(
    rule_index: int,
    shard: Optional[Tuple[int, int]],
    main_manifest: Sequence[TableManifest],
    new_manifest: Optional[Sequence[TableManifest]],
    iteration: int,
    theta_prepass_done: bool,
) -> Tuple[Optional[str], List[Tuple[int, int]], Dict[str, int], float]:
    """Fire one rule (or one shard) against the exported snapshot.

    ``new_manifest=None`` means ``new`` *is* ``main`` (Algorithm 1's
    first iteration sees everything as new).  Returns the serialized
    output segment, the per-rule emission counters and the busy time.
    """
    import time

    _fire_fault("parallel.worker", f"rule_index={rule_index}")
    state = _WORKER
    assert state is not None, "worker used before initialization"
    main = state.store_for("main", main_manifest)
    new = (
        main
        if new_manifest is None
        else state.store_for("new", new_manifest)
    )
    buffers = InferredBuffers()
    ctx = RuleContext(
        main=main,
        new=new,
        out=buffers,
        vocab=state.vocab,
        iteration=iteration,
        theta_prepass_done=theta_prepass_done,
        kernels=state.kernels,
    )
    rule = state.rules[rule_index]
    started = time.perf_counter()
    if shard is None:
        rule.apply(ctx)
    else:
        rule.apply_shard(ctx, shard)
    elapsed = time.perf_counter() - started
    name, entries = buffers_to_segment(buffers)
    return name, entries, ctx.stats, elapsed


# ----------------------------------------------------------------------
# The parent-side session
# ----------------------------------------------------------------------
class ProcessSession:
    """A process pool + shared-memory mirrors for rule firing.

    Created lazily by the scheduler and kept alive for the Store's
    lifetime: the scheduler exports each iteration's ``(main, new)``
    snapshot once (identity-keyed segment reuse makes re-exports across
    incremental flushes track the delta, not the store size), submits
    ``(rule, shard)`` tasks, and absorbs the returned segments in
    deterministic order.  ``shutdown()`` joins the workers and unlinks
    every live segment; :attr:`broken` reports a dead pool (worker
    killed) so the owner can rebuild instead of reusing it.
    """

    mode = "process"

    def __init__(
        self,
        *,
        workers: int,
        rules: Sequence[Rule],
        vocab: Vocab,
        kernels: KernelBackend,
        algorithm: str = "auto",
        start_method: Optional[str] = None,
    ):
        if not process_mode_supported():  # pragma: no cover - platform
            raise ProcessModeUnavailable(
                f"process parallel mode is unsupported on {sys.platform}"
            )
        rules = list(rules)
        try:
            pickle.dumps(rules)
        except Exception as error:
            raise ProcessModeUnavailable(
                "process parallel mode needs picklable rule executors "
                f"(custom rule list failed to serialize: {error!r}); "
                "use parallel_mode='thread'"
            ) from error
        if start_method is None:
            start_method = (
                os.environ.get(START_METHOD_ENV, "").strip() or None
            )
        from concurrent.futures import ProcessPoolExecutor

        try:
            context = get_context(start_method)
        except ValueError as error:
            raise ProcessModeUnavailable(
                f"unknown multiprocessing start method "
                f"{start_method!r}: {error}"
            ) from error
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=context,
            initializer=_worker_init,
            initargs=(rules, dict(vocab._ids), kernels.name, algorithm),
        )
        self._main_exporter = SharedStoreExporter()
        self._new_exporter = SharedStoreExporter()
        self.start_method = context.get_start_method()

    def export(
        self, main: TripleStore, new: TripleStore
    ) -> Tuple[List[TableManifest], Optional[List[TableManifest]]]:
        """Mirror the iteration's snapshot; returns both manifests.

        ``new is main`` (first iteration) exports once and signals the
        aliasing with a ``None`` new-manifest.
        """
        main_manifest = self._main_exporter.export(main)
        if new is main:
            return main_manifest, None
        return main_manifest, self._new_exporter.export(new)

    def submit(
        self,
        rule_index: int,
        shard: Optional[Tuple[int, int]],
        main_manifest: Sequence[TableManifest],
        new_manifest: Optional[Sequence[TableManifest]],
        iteration: int,
        theta_prepass_done: bool,
    ):
        return self._executor.submit(
            _worker_fire,
            rule_index,
            shard,
            main_manifest,
            new_manifest,
            iteration,
            theta_prepass_done,
        )

    @property
    def broken(self) -> bool:
        """Whether the underlying pool has died (e.g. a worker was
        killed) and the session must be rebuilt before reuse."""
        return bool(getattr(self._executor, "_broken", False))

    def export_stats(self) -> Dict[str, int]:
        """Lifetime segment counters across both exported roles."""
        return {
            "segments_created": (
                self._main_exporter.segments_created
                + self._new_exporter.segments_created
            ),
            "segments_reused": (
                self._main_exporter.segments_reused
                + self._new_exporter.segments_reused
            ),
        }

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)
        self._main_exporter.close()
        self._new_exporter.close()
