"""Dependency-aware parallel rule scheduler (wave execution).

One :class:`ParallelRuleScheduler` owns the rule list of an engine, the
rule dependency graph derived from it
(:class:`repro.rules.depgraph.RuleDependencyGraph`) and the resulting
**wave** stratification.  Per fixed-point iteration the scheduler fires
the rules wave by wave; within a wave every rule runs concurrently on a
:class:`~concurrent.futures.ThreadPoolExecutor` (the NumPy kernel
backend's sort/merge/join primitives release the GIL, so waves scale on
real cores; the pure-Python backend interleaves but stays correct).

Equivalence with sequential execution is by construction:

* every rule of an iteration reads the same committed ``(main, new)``
  snapshot — committed pair arrays are never mutated in place, and the
  merge happens only at the iteration barrier, after all waves;
* each rule emits into a **private** :class:`InferredBuffers`, so there
  is no shared mutable state between concurrently firing rules;
* the private buffers are absorbed into one combined buffer in
  catalogue rule order (deterministic commit order) and pushed through
  the existing Figure-5 merge, whose sort+dedup makes the committed
  arrays a pure function of the *set* of emitted pairs — closures are
  byte-identical regardless of worker count.

Sequential execution is the ``workers=1`` special case of the same
wave loop (no executor is spun up), so there is a single code path to
test.  The remaining shared reads — the lazily cached ⟨o, s⟩ views —
are benign under CPython: concurrent computation of a missing cache
yields identical permutations and the last atomic assignment wins.

Because outputs commit only at the iteration barrier, the wave order
is a *schedule*, not a semantic dependency: it ensures producers fire
no later than the consumers they feed (the standard rulesets collapse
into one maximal-parallelism wave) and is the structure the eager
per-wave merge on ROADMAP's open-items list will hang off.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from ..kernels import KernelBackend
from ..rules.depgraph import RuleDependencyGraph
from ..rules.spec import Rule, RuleContext, Vocab
from ..store.triple_store import InferredBuffers, TripleStore

__all__ = [
    "IterationOutcome",
    "ParallelRuleScheduler",
    "resolve_workers",
]

#: Environment default for the worker count (used when ``workers=None``).
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` request to a concrete positive count.

    ``None`` reads the :data:`WORKERS_ENV` environment variable
    (defaulting to 1 — sequential); ``0`` and negative values mean
    "all cores" (``os.cpu_count()``).
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ValueError(
                f"{WORKERS_ENV}={raw!r} is not an integer worker count"
            )
    workers = int(workers)
    if workers <= 0:
        return os.cpu_count() or 1
    return workers


@dataclass
class IterationOutcome:
    """What one scheduled iteration produced (pre-merge).

    ``out`` holds every rule's emissions combined in catalogue order;
    ``rule_counts`` / ``rule_seconds`` are per-rule observability and
    ``wave_seconds[k]`` is the wall-clock barrier-to-barrier time of
    wave *k*.
    """

    out: InferredBuffers
    rule_counts: Dict[str, int] = field(default_factory=dict)
    rule_seconds: Dict[str, float] = field(default_factory=dict)
    wave_seconds: List[float] = field(default_factory=list)


class ParallelRuleScheduler:
    """Wave-stratified, dependency-aware executor for a rule list."""

    def __init__(
        self,
        rules: Sequence[Rule],
        *,
        workers: Optional[int] = None,
        graph: Optional[RuleDependencyGraph] = None,
    ):
        self.rules: List[Rule] = list(rules)
        self.workers = resolve_workers(workers)
        self.graph = graph if graph is not None else RuleDependencyGraph(
            self.rules
        )
        #: Wave stratification as lists of rule indexes (see depgraph).
        self.waves: List[List[int]] = self.graph.stratify()

    @property
    def n_waves(self) -> int:
        return len(self.waves)

    def wave_names(self) -> List[List[str]]:
        """Rule names per wave (observability)."""
        return [[self.rules[i].name for i in wave] for wave in self.waves]

    @contextmanager
    def session(self) -> Iterator[Optional[ThreadPoolExecutor]]:
        """Worker-pool context for one materialization run.

        Yields ``None`` in the sequential (``workers=1``) case so the
        wave loop runs inline; otherwise a live executor whose threads
        are joined when the materialization finishes.
        """
        if self.workers <= 1:
            yield None
            return
        executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-rule"
        )
        try:
            yield executor
        finally:
            executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # One fixed-point iteration
    # ------------------------------------------------------------------
    def run_iteration(
        self,
        *,
        main: TripleStore,
        new: TripleStore,
        vocab: Vocab,
        kernels: KernelBackend,
        iteration: int = 1,
        theta_prepass_done: bool = False,
        executor: Optional[ThreadPoolExecutor] = None,
    ) -> IterationOutcome:
        """Fire every rule once, wave by wave; returns the outcome.

        All rules observe the same ``(main, new)`` snapshot; the caller
        merges ``outcome.out`` afterwards (the per-iteration barrier).
        """
        outcome = IterationOutcome(out=InferredBuffers())
        per_rule: List[Optional[tuple]] = [None] * len(self.rules)

        def fire(rule_index: int) -> tuple:
            rule = self.rules[rule_index]
            buffers = InferredBuffers()
            ctx = RuleContext(
                main=main,
                new=new,
                out=buffers,
                vocab=vocab,
                iteration=iteration,
                theta_prepass_done=theta_prepass_done,
                kernels=kernels,
            )
            started = time.perf_counter()
            rule.apply(ctx)
            return buffers, ctx.stats, time.perf_counter() - started

        for wave in self.waves:
            wave_started = time.perf_counter()
            if executor is not None and len(wave) > 1:
                futures = [
                    (index, executor.submit(fire, index)) for index in wave
                ]
                for index, future in futures:
                    per_rule[index] = future.result()
            else:
                for index in wave:
                    per_rule[index] = fire(index)
            outcome.wave_seconds.append(time.perf_counter() - wave_started)

        # Deterministic commit order: absorb in catalogue rule order.
        for index, rule in enumerate(self.rules):
            fired = per_rule[index]
            if fired is None:  # pragma: no cover - every rule fires
                continue
            buffers, counts, elapsed = fired
            outcome.out.absorb(buffers)
            name = rule.name
            outcome.rule_seconds[name] = (
                outcome.rule_seconds.get(name, 0.0) + elapsed
            )
            for rule_name, count in counts.items():
                outcome.rule_counts[rule_name] = (
                    outcome.rule_counts.get(rule_name, 0) + count
                )
        return outcome
