"""Dependency-aware parallel rule scheduler (wave execution).

One :class:`ParallelRuleScheduler` owns the rule list of an engine, the
rule dependency graph derived from it
(:class:`repro.rules.depgraph.RuleDependencyGraph`) and the resulting
**wave** stratification.  Per fixed-point iteration the scheduler fires
the rules wave by wave; within a wave every *task* — a rule firing, or
one key-range shard of a splittable rule — runs concurrently on the
session's executor.

Two executor substrates are available (``mode=``):

* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  The NumPy kernel backend's sort/merge/join primitives release the
  GIL, so waves scale on real cores; the pure-Python backend
  interleaves but stays correct.
* ``"process"`` — a process pool over ``multiprocessing``
  shared-memory segments (:mod:`repro.core.parallel`): the committed
  pair arrays are exported once per version as raw int64 buffers,
  workers rebuild zero-copy read views, and each task's private output
  buffers come back as one segment.  This is the mode that makes
  ``workers=N`` pay off on the pure-Python backend — *when the input
  is big enough to amortize the export and result-marshalling costs*.

**Executor selection** (``mode="auto"``, the default) is a cost model,
not a backend lookup: :meth:`ParallelRuleScheduler.decide` estimates
the materialization's per-iteration work from committed table sizes
plus the catalogue's :meth:`~repro.rules.spec.Rule.estimate_join_input`
hooks and picks ``sequential`` below the measured substrate crossover
(parallel substrates only ever *cost* below it — pool scheduling,
segment memcpy, result pickling), ``thread`` for GIL-releasing backends
above the thread crossover, and ``process`` for the pure-Python backend
above the (higher) process crossover.  Fewer than two usable cores
always means sequential — no substrate can pay for itself on one core.
Crossovers default to values measured by ``benchmarks/
bench_table2_rdfs.py --scale`` and are overridable per scheduler or via
``$REPRO_THREAD_CROSSOVER`` / ``$REPRO_PROCESS_CROSSOVER``;
``$REPRO_PARALLEL_MODE`` still forces a substrate unconditionally.
Every pick is recorded as an :class:`ExecutorDecision` (surfaced on
``MaterializationStats.parallel_decision``).

**Worker pools persist for the scheduler's lifetime**: the first
parallel materialization lazily starts the pool, and subsequent
flushes — including every incremental flush of a long-lived
:class:`~repro.core.store_api.Store` — reuse both the pool and the
exported shared-memory segments (identity-keyed, so re-exports track
the delta).  ``close()`` (or garbage collection of the scheduler, via
``weakref.finalize``) tears pools and segments down.

**Intra-rule work splitting**: a rule whose estimated join input
exceeds ``split_threshold`` pairs (CAX-SCO over the type table is the
motivating case) is split into key-range shards of its merge join
(:meth:`repro.rules.spec.Rule.shard_plan`), each shard a schedulable
task.  Shard outputs are absorbed in shard order before the
per-iteration merge, so splitting never changes the committed bytes.

Equivalence with sequential execution is by construction:

* every task of an iteration reads the same committed ``(main, new)``
  snapshot — committed pair arrays are never mutated in place, and the
  merge happens only at the iteration barrier, after all waves;
* each task emits into a **private** :class:`InferredBuffers`, so
  there is no shared mutable state between concurrently firing tasks;
* the private buffers are absorbed into one combined buffer in
  catalogue rule order (shard order within a rule) and pushed through
  the existing Figure-5 merge, whose sort+dedup makes the committed
  arrays a pure function of the *set* of emitted pairs — closures are
  byte-identical regardless of worker count, executor mode or shard
  count.

Sequential execution is the ``workers=1`` special case of the same
wave loop (no executor is spun up, no splitting), so there is a single
code path to test.
"""

from __future__ import annotations

import os
import time
import warnings
import weakref
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..kernels import KernelBackend, resolve_backend
from ..rules.depgraph import RuleDependencyGraph
from ..rules.spec import Rule, RuleContext, Vocab
from ..store.triple_store import InferredBuffers, TripleStore
from .parallel import (
    ProcessModeUnavailable,
    ProcessSession,
    discard_result_segment,
    process_mode_supported,
    resolve_parallel_mode,
    resolve_split_threshold,
    segment_to_buffers,
)

__all__ = [
    "ExecutorDecision",
    "IterationOutcome",
    "ParallelRuleScheduler",
    "resolve_crossover",
    "resolve_parallel_cores",
    "resolve_workers",
]

#: Environment default for the worker count (used when ``workers=None``).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment override for the usable core count the cost model sees
#: (testing/CI: simulate a multicore decision on a one-core box).
PARALLEL_CORES_ENV = "REPRO_PARALLEL_CORES"

#: Environment overrides for the cost-model crossovers (estimated
#: join-input pairs per iteration above which a substrate pays off).
THREAD_CROSSOVER_ENV = "REPRO_THREAD_CROSSOVER"
PROCESS_CROSSOVER_ENV = "REPRO_PROCESS_CROSSOVER"

#: Default crossovers, anchored to the scale benchmark
#: (``benchmarks/bench_table2_rdfs.py --scale``): BSBM-300 and
#: BSBM-10k estimate well below both (their sequential
#: materializations are single-digit milliseconds to ~0.1 s — pool
#: dispatch plus export memcpy dominate any win), while BSBM-100k
#: (~0.9 M committed triples, ~0.9 s sequential) clears the thread
#: crossover.  The process substrate additionally pays a per-iteration
#: snapshot export and per-task result pickling, so its crossover sits
#: roughly an order of magnitude higher.
DEFAULT_THREAD_CROSSOVER = 250_000
DEFAULT_PROCESS_CROSSOVER = 2_000_000

#: Executor handle yielded by :meth:`ParallelRuleScheduler.session`.
Executor = Union[ThreadPoolExecutor, ProcessSession]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` request to a concrete positive count.

    Explicit values are trusted: ``0`` and negatives mean "all cores"
    (``os.cpu_count()``), positives pass through.  ``None`` reads the
    :data:`WORKERS_ENV` environment variable (defaulting to 1 —
    sequential), and environment values are *sanitized* rather than
    trusted, since a stray shell export should never crash or
    oversubscribe an engine: non-numeric values warn and fall back to
    sequential, negatives warn and use all cores, and anything above
    4× the core count warns and clamps to that ceiling.
    """
    if workers is not None:
        workers = int(workers)
        if workers <= 0:
            return os.cpu_count() or 1
        return workers
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    cores = os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"{WORKERS_ENV}={raw!r} is not an integer worker count; "
            "running sequentially (workers=1)",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    if value == 0:
        return cores
    if value < 0:
        warnings.warn(
            f"{WORKERS_ENV}={value} is negative; using all {cores} "
            "core(s)",
            RuntimeWarning,
            stacklevel=2,
        )
        return cores
    ceiling = 4 * cores
    if value > ceiling:
        warnings.warn(
            f"{WORKERS_ENV}={value} would oversubscribe {cores} core(s); "
            f"clamping to {ceiling} (4x cores)",
            RuntimeWarning,
            stacklevel=2,
        )
        return ceiling
    return value


def resolve_parallel_cores(cores: Optional[int] = None) -> int:
    """The usable core count the executor cost model plans against.

    Explicit values are trusted (clamped to >= 1); ``None`` reads
    :data:`PARALLEL_CORES_ENV` (sanitized: non-numeric or non-positive
    values warn and fall back to the detected count) and defaults to
    ``os.cpu_count()``.
    """
    detected = os.cpu_count() or 1
    if cores is not None:
        return max(1, int(cores))
    raw = os.environ.get(PARALLEL_CORES_ENV, "").strip()
    if not raw:
        return detected
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"{PARALLEL_CORES_ENV}={raw!r} is not an integer core "
            f"count; using the detected {detected}",
            RuntimeWarning,
            stacklevel=2,
        )
        return detected
    if value < 1:
        warnings.warn(
            f"{PARALLEL_CORES_ENV}={value} is not positive; using the "
            f"detected {detected}",
            RuntimeWarning,
            stacklevel=2,
        )
        return detected
    return value


def resolve_crossover(
    value: Optional[int], *, env: str, default: int
) -> int:
    """Normalize one cost-model crossover (estimated pairs).

    Explicit values are trusted (clamped to >= 0; ``0`` means "always
    profitable"); ``None`` reads ``env``, where non-numeric or negative
    values warn and fall back to ``default`` — a stray shell export
    must never crash an engine (mirrors ``$REPRO_WORKERS``).
    """
    if value is not None:
        return max(0, int(value))
    raw = os.environ.get(env, "").strip()
    if not raw:
        return default
    try:
        parsed = int(raw)
    except ValueError:
        warnings.warn(
            f"{env}={raw!r} is not an integer pair count; using the "
            f"default ({default})",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    if parsed < 0:
        warnings.warn(
            f"{env}={parsed} is negative; using the default ({default})",
            RuntimeWarning,
            stacklevel=2,
        )
        return default
    return parsed


@dataclass
class ExecutorDecision:
    """One recorded executor pick for a materialization.

    ``mode`` is the substrate the run actually uses (``sequential`` /
    ``thread`` / ``process``); ``requested`` is what the caller asked
    for (``auto`` unless forced); ``estimated_pairs`` is the cost
    model's per-iteration work estimate (``None`` when no snapshot was
    available to estimate from); ``reason`` says why in one sentence.
    ``fallback`` is filled in when a picked process substrate could not
    start and the run degraded to threads.
    """

    mode: str
    requested: str
    forced: bool
    workers: int
    cores: int
    estimated_pairs: Optional[int]
    thread_crossover: int
    process_crossover: int
    reason: str
    fallback: Optional[str] = None

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready view (stats / bench reports)."""
        return {
            "mode": self.mode,
            "requested": self.requested,
            "forced": self.forced,
            "workers": self.workers,
            "cores": self.cores,
            "estimated_pairs": self.estimated_pairs,
            "thread_crossover": self.thread_crossover,
            "process_crossover": self.process_crossover,
            "reason": self.reason,
            "fallback": self.fallback,
        }


class _PoolBox:
    """Holder for the scheduler's lazily-started persistent pools.

    Lives separately from the scheduler so a ``weakref.finalize`` on
    the scheduler can reap the pools without keeping the scheduler
    itself alive (the finalizer closes over the box, not the owner).
    """

    __slots__ = ("thread", "process")

    def __init__(self) -> None:
        self.thread: Optional[ThreadPoolExecutor] = None
        self.process: Optional[ProcessSession] = None


def _close_pool_box(box: _PoolBox) -> None:
    thread, box.thread = box.thread, None
    process, box.process = box.process, None
    if thread is not None:
        thread.shutdown(wait=True)
    if process is not None:
        process.shutdown()


@dataclass
class IterationOutcome:
    """What one scheduled iteration produced (pre-merge).

    ``out`` holds every task's emissions combined in catalogue order
    (shard order within a rule); ``rule_counts`` / ``rule_seconds``
    are per-rule observability (a sharded rule's time is the summed
    busy time of its shards), ``rule_shards`` records the shard count
    of every rule that was split this iteration, and
    ``wave_seconds[k]`` is the wall-clock barrier-to-barrier time of
    wave *k*.
    """

    out: InferredBuffers
    rule_counts: Dict[str, int] = field(default_factory=dict)
    rule_seconds: Dict[str, float] = field(default_factory=dict)
    rule_shards: Dict[str, int] = field(default_factory=dict)
    wave_seconds: List[float] = field(default_factory=list)


class ParallelRuleScheduler:
    """Wave-stratified, dependency-aware executor for a rule list."""

    def __init__(
        self,
        rules: Sequence[Rule],
        *,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        graph: Optional[RuleDependencyGraph] = None,
        vocab: Optional[Vocab] = None,
        kernels: Optional[KernelBackend] = None,
        algorithm: str = "auto",
        split_threshold: Optional[int] = None,
        start_method: Optional[str] = None,
        thread_crossover: Optional[int] = None,
        process_crossover: Optional[int] = None,
        cores: Optional[int] = None,
    ):
        self.rules: List[Rule] = list(rules)
        self.workers = resolve_workers(workers)
        self.kernels = (
            kernels
            if kernels is not None
            else resolve_backend("auto", algorithm=algorithm)
        )
        self.algorithm = algorithm
        self.vocab = vocab
        self.split_threshold = resolve_split_threshold(split_threshold)
        self.start_method = start_method
        #: What the caller asked for: ``auto`` / ``thread`` /
        #: ``process`` (parameter beats environment; bad environment
        #: values warn and fall back to ``auto``).
        self.requested_mode = resolve_parallel_mode(mode)
        # A requested substrate is *forced*: it is used regardless of
        # the cost model, and a process substrate that cannot start
        # fails loudly instead of degrading to threads.
        self._mode_forced = self.requested_mode in ("thread", "process")
        self.thread_crossover = resolve_crossover(
            thread_crossover,
            env=THREAD_CROSSOVER_ENV,
            default=DEFAULT_THREAD_CROSSOVER,
        )
        self.process_crossover = resolve_crossover(
            process_crossover,
            env=PROCESS_CROSSOVER_ENV,
            default=DEFAULT_PROCESS_CROSSOVER,
        )
        self.cores = resolve_parallel_cores(cores)
        #: The most recent :meth:`decide` result (observability).
        self.last_decision: Optional[ExecutorDecision] = None
        # Sticky record of why an auto-picked process substrate could
        # not start (unpicklable rules, missing vocab): decide() stops
        # proposing process once it is known to fail.
        self._process_fallback: Optional[str] = None
        #: Mid-wave self-healing events over this scheduler's lifetime:
        #: each count is one broken process session (dead worker,
        #: vanished shared-memory segment) torn down and re-run on the
        #: local substrate without failing the flush.
        self.degraded_total = 0
        self._pools = _PoolBox()
        self._pool_finalizer = weakref.finalize(
            self, _close_pool_box, self._pools
        )
        self.graph = graph if graph is not None else RuleDependencyGraph(
            self.rules
        )
        #: Wave stratification as lists of rule indexes (see depgraph).
        self.waves: List[List[int]] = self.graph.stratify()

    @property
    def n_waves(self) -> int:
        return len(self.waves)

    @property
    def effective_mode(self) -> str:
        """The substrate rule firings run on (best current knowledge).

        ``"sequential"`` when ``workers=1`` (no executor at all); the
        forced substrate when one was requested; the last recorded
        decision's pick otherwise; ``"auto"`` before any decision has
        been made (the cost model picks per materialization).
        """
        if self.workers <= 1:
            return "sequential"
        if self.last_decision is not None:
            return self.last_decision.mode
        if self._mode_forced:
            return self.requested_mode
        return "auto"

    def wave_names(self) -> List[List[str]]:
        """Rule names per wave (observability)."""
        return [[self.rules[i].name for i in wave] for wave in self.waves]

    # ------------------------------------------------------------------
    # Executor cost model
    # ------------------------------------------------------------------
    def estimate_iteration_work(
        self, main: TripleStore, new: TripleStore
    ) -> int:
        """Estimated pairs one iteration's rule firings will scan.

        Sums the catalogue's :meth:`Rule.estimate_join_input` hooks
        (O(1) table-size lookups each), floored by the snapshot size —
        rules without an estimator still have to scan their inputs, so
        the floor keeps the model honest for custom rules.  The floor
        is the full store on a batch run (``new is main``: everything
        participates) but only the *delta* on a semi-naive incremental
        run — the main-side legs a delta joins against are already
        priced by the per-rule estimators.
        """
        total = 0
        if self.vocab is not None:
            for rule in self.rules:
                estimate = rule.estimate_join_input(
                    main=main, new=new, vocab=self.vocab
                )
                if estimate:
                    total += int(estimate)
        floor = main.n_triples if new is main else new.n_triples
        return max(total, floor)

    def decide(
        self,
        main: Optional[TripleStore] = None,
        new: Optional[TripleStore] = None,
    ) -> ExecutorDecision:
        """Pick the executor substrate for one materialization.

        Forced modes (explicit ``parallel_mode=`` or
        ``$REPRO_PARALLEL_MODE``) short-circuit the model.  ``auto``
        estimates the per-iteration work from the committed snapshot
        (``None`` stores mean "unknown", treated as above every
        crossover so standalone callers keep an executor) and refuses
        any parallel substrate below its measured crossover — or when
        fewer than two cores are usable, where no substrate can pay.
        """
        requested = self.requested_mode
        workers = self.workers

        def decision(mode: str, reason: str, estimated=None) -> ExecutorDecision:
            return ExecutorDecision(
                mode=mode,
                requested=requested,
                forced=self._mode_forced,
                workers=workers,
                cores=self.cores,
                estimated_pairs=estimated,
                thread_crossover=self.thread_crossover,
                process_crossover=self.process_crossover,
                reason=reason,
            )

        if workers <= 1:
            return decision("sequential", "workers=1 (no executor)")
        if self._mode_forced:
            return decision(
                requested,
                f"forced by parallel_mode={requested!r} "
                f"(cost model bypassed)",
            )
        estimated: Optional[int] = None
        if main is not None and new is not None:
            estimated = self.estimate_iteration_work(main, new)
        if self.cores < 2:
            return decision(
                "sequential",
                f"only {self.cores} usable core(s); no parallel "
                f"substrate can pay for its overhead",
                estimated,
            )
        # The compressed backend delegates its window math to an inner
        # substrate; whether threads can scale — and how much extra work
        # the block decode/encode adds per scanned pair — follows the
        # inner backend, so both crossovers double and the GIL-bound
        # classification tracks ``inner_name``.
        backend_name = self.kernels.name
        inner_name = getattr(self.kernels, "inner_name", backend_name)
        compressed = backend_name == "compressed"
        scale = 2 if compressed else 1
        thread_crossover = scale * self.thread_crossover
        process_crossover = scale * self.process_crossover
        gil_bound = (inner_name if compressed else backend_name) == "python"
        if not gil_bound:
            # Vectorized kernels release the GIL: threads scale and
            # skip the export memcpy, so process mode never wins here.
            if estimated is not None and estimated < thread_crossover:
                return decision(
                    "sequential",
                    f"estimated {estimated} pairs/iteration is below "
                    f"the thread crossover ({thread_crossover})"
                    + (
                        " (doubled for compressed-block decode cost)"
                        if compressed else ""
                    ),
                    estimated,
                )
            return decision(
                "thread",
                f"estimated work clears the thread crossover on the "
                f"GIL-releasing {backend_name!r} backend"
                + (
                    f" (decompressed windows run on {inner_name!r})"
                    if compressed else ""
                ),
                estimated,
            )
        # GIL-serialized substrate (pure-Python kernels, or compressed
        # blocks decoded by the pure-Python codec): threads cannot help,
        # so the only substrate that can win is processes — above their
        # crossover.
        if estimated is not None and estimated < process_crossover:
            return decision(
                "sequential",
                f"estimated {estimated} pairs/iteration is below the "
                f"process crossover ({process_crossover}); threads "
                f"cannot help the GIL-serialized {backend_name!r} backend",
                estimated,
            )
        if self._process_fallback is not None:
            picked = decision(
                "thread",
                "process substrate previously failed to start; "
                "degrading to threads",
                estimated,
            )
            picked.fallback = self._process_fallback
            return picked
        if not process_mode_supported():
            return decision(
                "thread",
                "process substrate unsupported on this platform; "
                "threads interleave but stay correct",
                estimated,
            )
        return decision(
            "process",
            f"estimated work clears the process crossover on the "
            f"GIL-serialized {backend_name!r} backend",
            estimated,
        )

    # ------------------------------------------------------------------
    # Persistent worker pools (Store-lifetime)
    # ------------------------------------------------------------------
    def _ensure_thread_pool(self) -> ThreadPoolExecutor:
        pool = self._pools.thread
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-rule"
            )
            self._pools.thread = pool
        return pool

    def _ensure_process_session(self) -> ProcessSession:
        session = self._pools.process
        if session is not None and session.broken:
            # A worker died (kill, OOM): the pool is unusable, but a
            # fresh one can be built — drop and recreate.
            self._pools.process = None
            try:
                session.shutdown()
            except Exception as error:  # pragma: no cover - best effort
                # Teardown of a broken pool stays best-effort, but a
                # failure here is exactly the kind of leak (zombie
                # workers, stranded segments) worth diagnosing.
                warnings.warn(
                    f"shutting down the broken process session failed: "
                    f"{error!r}",
                    RuntimeWarning,
                )
            session = None
        if session is None:
            if self.vocab is None:
                raise ProcessModeUnavailable(
                    "process parallel mode needs the scheduler to be "
                    "built with vocab= (the engine does this); "
                    "standalone schedulers run threads"
                )
            session = ProcessSession(
                workers=self.workers,
                rules=self.rules,
                vocab=self.vocab,
                kernels=self.kernels,
                algorithm=self.algorithm,
                start_method=self.start_method,
            )
            self._pools.process = session
        return session

    #: Mid-wave failures that mean "the process substrate broke", not
    #: "the rule is wrong": a worker died (kill -9, OOM — surfaces as
    #: BrokenProcessPool) or a shared-memory segment vanished
    #: (FileNotFoundError from attach, on either side of the pool).
    #: Both are healed by re-running the wave locally; anything else
    #: still fails the flush.
    _HEALABLE_ERRORS = (BrokenProcessPool, FileNotFoundError)

    def _heal_broken_session(
        self, session: ProcessSession, error: BaseException
    ) -> str:
        """Tear down a mid-wave-broken process session; returns why.

        The session's pool and exported segments are released (best
        effort — a broken pool may not shut down cleanly) and the
        scheduler forgets it, so the *next* process decision lazily
        builds a fresh one.  The failure is deliberately not sticky:
        unlike a pool that cannot start at all, a killed worker says
        nothing about whether a new pool would work.
        """
        reason = (
            f"process session broke mid-wave "
            f"({type(error).__name__}: {error}); re-ran the affected "
            f"wave locally"
        )
        self.degraded_total += 1
        session._defunct = True
        if self._pools.process is session:
            self._pools.process = None
        try:
            session.shutdown()
        except Exception as shutdown_error:  # pragma: no cover
            warnings.warn(
                f"shutting down the broken process session failed: "
                f"{shutdown_error!r}",
                RuntimeWarning,
            )
        decision = self.last_decision
        if decision is not None:
            decision.mode = "thread" if self.workers > 1 else "sequential"
            decision.fallback = reason
        warnings.warn(
            f"self-healing parallel flush: {reason}",
            RuntimeWarning,
            stacklevel=3,
        )
        return reason

    @property
    def process_session(self) -> Optional[ProcessSession]:
        """The live persistent process session, if one was started."""
        return self._pools.process

    @property
    def thread_pool(self) -> Optional[ThreadPoolExecutor]:
        """The live persistent thread pool, if one was started."""
        return self._pools.thread

    def close(self) -> None:
        """Shut down persistent pools and release exported segments.

        Idempotent; the scheduler remains usable afterwards (the next
        parallel session lazily starts fresh pools).
        """
        _close_pool_box(self._pools)

    @contextmanager
    def session(
        self, decision: Optional[ExecutorDecision] = None
    ) -> Iterator[Optional[Executor]]:
        """Executor context for one materialization run.

        Yields ``None`` for a sequential decision so the wave loop runs
        inline; otherwise the scheduler's *persistent* thread pool or
        :class:`ProcessSession`, lazily started on first use and left
        running on exit — pools and exported segments live until
        :meth:`close` (incremental flushes reuse them).  ``decision``
        defaults to :meth:`decide` with no snapshot.  An auto-picked
        process substrate that cannot start (unpicklable custom rules,
        missing vocabulary) falls back to threads and records why; a
        forced ``mode="process"`` raises instead.
        """
        if decision is None:
            decision = self.decide()
        self.last_decision = decision
        if decision.mode == "sequential" or self.workers <= 1:
            yield None
            return
        if decision.mode == "process":
            try:
                session = self._ensure_process_session()
            except ProcessModeUnavailable as error:
                if decision.forced:
                    raise
                self._process_fallback = str(error)
                decision.mode = "thread"
                decision.fallback = str(error)
                warnings.warn(
                    f"auto-selected process parallel mode is unavailable "
                    f"({error}); falling back to threads — expect no "
                    f"speedup on the pure-Python backend",
                    RuntimeWarning,
                    stacklevel=3,
                )
            else:
                yield session
                return
        yield self._ensure_thread_pool()

    # ------------------------------------------------------------------
    # One fixed-point iteration
    # ------------------------------------------------------------------
    def run_iteration(
        self,
        *,
        main: TripleStore,
        new: TripleStore,
        vocab: Vocab,
        kernels: KernelBackend,
        iteration: int = 1,
        theta_prepass_done: bool = False,
        executor: Optional[Executor] = None,
    ) -> IterationOutcome:
        """Fire every rule once, wave by wave; returns the outcome.

        All tasks observe the same ``(main, new)`` snapshot; the caller
        merges ``outcome.out`` afterwards (the per-iteration barrier).
        """
        outcome = IterationOutcome(out=InferredBuffers())
        results: List[List[tuple]] = [[] for _ in self.rules]

        # Plan intra-rule splits against the committed snapshot (cheap:
        # table-size lookups).  Only parallel runs split — sequential
        # execution would gain nothing and stays the reference path.
        plans: Dict[int, int] = {}
        if executor is not None and self.split_threshold > 0:
            for index, rule in enumerate(self.rules):
                n_shards = rule.shard_plan(
                    main=main,
                    new=new,
                    vocab=vocab,
                    max_shards=self.workers,
                    threshold=self.split_threshold,
                )
                if n_shards is not None and n_shards >= 2:
                    plans[index] = int(n_shards)

        process_session = (
            executor if isinstance(executor, ProcessSession) else None
        )
        if process_session is not None and getattr(
            process_session, "_defunct", False
        ):
            # The session broke — and was healed — during an earlier
            # iteration of this materialization; the engine still holds
            # the stale executor for the rest of the run, so stay on
            # the local substrate.
            process_session = None
            executor = (
                self._ensure_thread_pool() if self.workers > 1 else None
            )
        if process_session is not None:
            main_manifest, new_manifest = process_session.export(main, new)

        def fire_local(
            rule_index: int, shard: Optional[Tuple[int, int]]
        ) -> tuple:
            rule = self.rules[rule_index]
            buffers = InferredBuffers()
            ctx = RuleContext(
                main=main,
                new=new,
                out=buffers,
                vocab=vocab,
                iteration=iteration,
                theta_prepass_done=theta_prepass_done,
                kernels=kernels,
            )
            started = time.perf_counter()
            if shard is None:
                rule.apply(ctx)
            else:
                rule.apply_shard(ctx, shard)
            return buffers, ctx.stats, time.perf_counter() - started

        for wave in self.waves:
            wave_started = time.perf_counter()
            tasks: List[Tuple[int, Optional[Tuple[int, int]]]] = []
            for index in wave:
                n_shards = plans.get(index)
                if n_shards is None:
                    tasks.append((index, None))
                else:
                    tasks.extend(
                        (index, (k, n_shards)) for k in range(n_shards)
                    )
            if process_session is not None:
                absorbed = 0
                try:
                    futures = [
                        (
                            index,
                            process_session.submit(
                                index,
                                shard,
                                main_manifest,
                                new_manifest,
                                iteration,
                                theta_prepass_done,
                            ),
                        )
                        for index, shard in tasks
                    ]
                    try:
                        for index, future in futures:
                            name, entries, counts, elapsed = future.result()
                            buffers = InferredBuffers()
                            if name is not None:
                                segment_to_buffers(name, entries, buffers)
                            results[index].append((buffers, counts, elapsed))
                            absorbed += 1
                    except BaseException:
                        # A task failed mid-wave: drain the remaining
                        # futures and unlink the (disowned) output
                        # segments of the siblings that completed, or
                        # they leak until reboot.
                        for _, future in futures[absorbed:]:
                            try:
                                name, _, _, _ = future.result()
                            except Exception:
                                continue
                            if name is not None:
                                discard_result_segment(name)
                        raise
                except self._HEALABLE_ERRORS as error:
                    # Self-healing: a dead worker or vanished segment
                    # breaks the session, not the flush.  Tear the
                    # session down, then re-run exactly the tasks of
                    # this wave that were not absorbed — completed
                    # siblings were discarded above, so every task
                    # still contributes exactly once and the committed
                    # closure stays byte-identical.
                    self._heal_broken_session(process_session, error)
                    process_session = None
                    executor = (
                        self._ensure_thread_pool()
                        if self.workers > 1
                        else None
                    )
                    for index, shard in tasks[absorbed:]:
                        results[index].append(fire_local(index, shard))
            elif executor is not None and len(tasks) > 1:
                futures = [
                    (index, executor.submit(fire_local, index, shard))
                    for index, shard in tasks
                ]
                for index, future in futures:
                    results[index].append(future.result())
            else:
                for index, shard in tasks:
                    results[index].append(fire_local(index, shard))
            outcome.wave_seconds.append(time.perf_counter() - wave_started)

        # Deterministic commit order: absorb in catalogue rule order,
        # shard order within a rule.
        for index, rule in enumerate(self.rules):
            fired = results[index]
            if not fired:  # pragma: no cover - every rule fires
                continue
            name = rule.name
            if len(fired) > 1:
                outcome.rule_shards[name] = max(
                    outcome.rule_shards.get(name, 0), len(fired)
                )
            for buffers, counts, elapsed in fired:
                outcome.out.absorb(buffers)
                outcome.rule_seconds[name] = (
                    outcome.rule_seconds.get(name, 0.0) + elapsed
                )
                for rule_name, count in counts.items():
                    outcome.rule_counts[rule_name] = (
                        outcome.rule_counts.get(rule_name, 0) + count
                    )
        return outcome
