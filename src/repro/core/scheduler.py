"""Dependency-aware parallel rule scheduler (wave execution).

One :class:`ParallelRuleScheduler` owns the rule list of an engine, the
rule dependency graph derived from it
(:class:`repro.rules.depgraph.RuleDependencyGraph`) and the resulting
**wave** stratification.  Per fixed-point iteration the scheduler fires
the rules wave by wave; within a wave every *task* — a rule firing, or
one key-range shard of a splittable rule — runs concurrently on the
session's executor.

Two executor substrates are available (``mode=``):

* ``"thread"`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  The NumPy kernel backend's sort/merge/join primitives release the
  GIL, so waves scale on real cores; the pure-Python backend
  interleaves but stays correct.
* ``"process"`` — a process pool over ``multiprocessing``
  shared-memory segments (:mod:`repro.core.parallel`): the committed
  pair arrays are exported once per version as raw int64 buffers,
  workers rebuild zero-copy read views, and each task's private output
  buffers come back as one segment.  This is the mode that makes
  ``workers=N`` pay off on the pure-Python backend, which ``"auto"``
  therefore selects for it (NumPy stays on threads — no export
  memcpy, kernels already parallel under the GIL release).

**Intra-rule work splitting**: a rule whose estimated join input
exceeds ``split_threshold`` pairs (CAX-SCO over the type table is the
motivating case) is split into key-range shards of its merge join
(:meth:`repro.rules.spec.Rule.shard_plan`), each shard a schedulable
task.  Shard outputs are absorbed in shard order before the
per-iteration merge, so splitting never changes the committed bytes.

Equivalence with sequential execution is by construction:

* every task of an iteration reads the same committed ``(main, new)``
  snapshot — committed pair arrays are never mutated in place, and the
  merge happens only at the iteration barrier, after all waves;
* each task emits into a **private** :class:`InferredBuffers`, so
  there is no shared mutable state between concurrently firing tasks;
* the private buffers are absorbed into one combined buffer in
  catalogue rule order (shard order within a rule) and pushed through
  the existing Figure-5 merge, whose sort+dedup makes the committed
  arrays a pure function of the *set* of emitted pairs — closures are
  byte-identical regardless of worker count, executor mode or shard
  count.

Sequential execution is the ``workers=1`` special case of the same
wave loop (no executor is spun up, no splitting), so there is a single
code path to test.
"""

from __future__ import annotations

import os
import time
import warnings
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..kernels import KernelBackend, resolve_backend
from ..rules.depgraph import RuleDependencyGraph
from ..rules.spec import Rule, RuleContext, Vocab
from ..store.triple_store import InferredBuffers, TripleStore
from .parallel import (
    PARALLEL_MODE_ENV,
    ProcessModeUnavailable,
    ProcessSession,
    discard_result_segment,
    resolve_parallel_mode,
    resolve_split_threshold,
    segment_to_buffers,
)

__all__ = [
    "IterationOutcome",
    "ParallelRuleScheduler",
    "resolve_workers",
]

#: Environment default for the worker count (used when ``workers=None``).
WORKERS_ENV = "REPRO_WORKERS"

#: Executor handle yielded by :meth:`ParallelRuleScheduler.session`.
Executor = Union[ThreadPoolExecutor, ProcessSession]


def resolve_workers(workers: Optional[int]) -> int:
    """Normalize a ``workers`` request to a concrete positive count.

    Explicit values are trusted: ``0`` and negatives mean "all cores"
    (``os.cpu_count()``), positives pass through.  ``None`` reads the
    :data:`WORKERS_ENV` environment variable (defaulting to 1 —
    sequential), and environment values are *sanitized* rather than
    trusted, since a stray shell export should never crash or
    oversubscribe an engine: non-numeric values warn and fall back to
    sequential, negatives warn and use all cores, and anything above
    4× the core count warns and clamps to that ceiling.
    """
    if workers is not None:
        workers = int(workers)
        if workers <= 0:
            return os.cpu_count() or 1
        return workers
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    cores = os.cpu_count() or 1
    try:
        value = int(raw)
    except ValueError:
        warnings.warn(
            f"{WORKERS_ENV}={raw!r} is not an integer worker count; "
            "running sequentially (workers=1)",
            RuntimeWarning,
            stacklevel=2,
        )
        return 1
    if value == 0:
        return cores
    if value < 0:
        warnings.warn(
            f"{WORKERS_ENV}={value} is negative; using all {cores} "
            "core(s)",
            RuntimeWarning,
            stacklevel=2,
        )
        return cores
    ceiling = 4 * cores
    if value > ceiling:
        warnings.warn(
            f"{WORKERS_ENV}={value} would oversubscribe {cores} core(s); "
            f"clamping to {ceiling} (4x cores)",
            RuntimeWarning,
            stacklevel=2,
        )
        return ceiling
    return value


@dataclass
class IterationOutcome:
    """What one scheduled iteration produced (pre-merge).

    ``out`` holds every task's emissions combined in catalogue order
    (shard order within a rule); ``rule_counts`` / ``rule_seconds``
    are per-rule observability (a sharded rule's time is the summed
    busy time of its shards), ``rule_shards`` records the shard count
    of every rule that was split this iteration, and
    ``wave_seconds[k]`` is the wall-clock barrier-to-barrier time of
    wave *k*.
    """

    out: InferredBuffers
    rule_counts: Dict[str, int] = field(default_factory=dict)
    rule_seconds: Dict[str, float] = field(default_factory=dict)
    rule_shards: Dict[str, int] = field(default_factory=dict)
    wave_seconds: List[float] = field(default_factory=list)


class ParallelRuleScheduler:
    """Wave-stratified, dependency-aware executor for a rule list."""

    def __init__(
        self,
        rules: Sequence[Rule],
        *,
        workers: Optional[int] = None,
        mode: Optional[str] = None,
        graph: Optional[RuleDependencyGraph] = None,
        vocab: Optional[Vocab] = None,
        kernels: Optional[KernelBackend] = None,
        algorithm: str = "auto",
        split_threshold: Optional[int] = None,
        start_method: Optional[str] = None,
    ):
        self.rules: List[Rule] = list(rules)
        self.workers = resolve_workers(workers)
        self.kernels = (
            kernels
            if kernels is not None
            else resolve_backend("auto", algorithm=algorithm)
        )
        self.algorithm = algorithm
        self.vocab = vocab
        self.split_threshold = resolve_split_threshold(split_threshold)
        self.start_method = start_method
        # Whether the mode was forced (parameter or environment) —
        # forced process mode fails loudly, auto-derived falls back.
        requested = mode
        if requested is None:
            requested = (
                os.environ.get(PARALLEL_MODE_ENV, "").strip() or None
            )
        self._mode_forced = (
            requested is not None
            and requested.lower() in ("thread", "process")
        )
        self.mode = resolve_parallel_mode(
            mode, backend_name=self.kernels.name
        )
        self.graph = graph if graph is not None else RuleDependencyGraph(
            self.rules
        )
        #: Wave stratification as lists of rule indexes (see depgraph).
        self.waves: List[List[int]] = self.graph.stratify()

    @property
    def n_waves(self) -> int:
        return len(self.waves)

    @property
    def effective_mode(self) -> str:
        """The substrate rule firings actually run on.

        ``"sequential"`` when ``workers=1`` (no executor at all), else
        the resolved ``"thread"`` / ``"process"`` mode.
        """
        if self.workers <= 1:
            return "sequential"
        return self.mode

    def wave_names(self) -> List[List[str]]:
        """Rule names per wave (observability)."""
        return [[self.rules[i].name for i in wave] for wave in self.waves]

    @contextmanager
    def session(self) -> Iterator[Optional[Executor]]:
        """Worker-pool context for one materialization run.

        Yields ``None`` in the sequential (``workers=1``) case so the
        wave loop runs inline; otherwise a live thread pool or
        :class:`ProcessSession` torn down when the materialization
        finishes.  An ``"auto"``-derived process mode that cannot start
        (unpicklable custom rules, missing vocabulary) falls back to
        threads; a forced ``mode="process"`` raises instead.
        """
        if self.workers <= 1:
            yield None
            return
        if self.mode == "process":
            session = None
            try:
                if self.vocab is None:
                    raise ProcessModeUnavailable(
                        "process parallel mode needs the scheduler to be "
                        "built with vocab= (the engine does this); "
                        "standalone schedulers run threads"
                    )
                session = ProcessSession(
                    workers=self.workers,
                    rules=self.rules,
                    vocab=self.vocab,
                    kernels=self.kernels,
                    algorithm=self.algorithm,
                    start_method=self.start_method,
                )
            except ProcessModeUnavailable as error:
                if self._mode_forced:
                    raise
                warnings.warn(
                    f"auto-selected process parallel mode is unavailable "
                    f"({error}); falling back to threads — expect no "
                    f"speedup on the pure-Python backend",
                    RuntimeWarning,
                    stacklevel=3,
                )
                self.mode = "thread"  # sticky auto-fallback
            if session is not None:
                try:
                    yield session
                finally:
                    session.shutdown()
                return
        executor = ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-rule"
        )
        try:
            yield executor
        finally:
            executor.shutdown(wait=True)

    # ------------------------------------------------------------------
    # One fixed-point iteration
    # ------------------------------------------------------------------
    def run_iteration(
        self,
        *,
        main: TripleStore,
        new: TripleStore,
        vocab: Vocab,
        kernels: KernelBackend,
        iteration: int = 1,
        theta_prepass_done: bool = False,
        executor: Optional[Executor] = None,
    ) -> IterationOutcome:
        """Fire every rule once, wave by wave; returns the outcome.

        All tasks observe the same ``(main, new)`` snapshot; the caller
        merges ``outcome.out`` afterwards (the per-iteration barrier).
        """
        outcome = IterationOutcome(out=InferredBuffers())
        results: List[List[tuple]] = [[] for _ in self.rules]

        # Plan intra-rule splits against the committed snapshot (cheap:
        # table-size lookups).  Only parallel runs split — sequential
        # execution would gain nothing and stays the reference path.
        plans: Dict[int, int] = {}
        if executor is not None and self.split_threshold > 0:
            for index, rule in enumerate(self.rules):
                n_shards = rule.shard_plan(
                    main=main,
                    new=new,
                    vocab=vocab,
                    max_shards=self.workers,
                    threshold=self.split_threshold,
                )
                if n_shards is not None and n_shards >= 2:
                    plans[index] = int(n_shards)

        process_session = (
            executor if isinstance(executor, ProcessSession) else None
        )
        if process_session is not None:
            main_manifest, new_manifest = process_session.export(main, new)

        def fire_local(
            rule_index: int, shard: Optional[Tuple[int, int]]
        ) -> tuple:
            rule = self.rules[rule_index]
            buffers = InferredBuffers()
            ctx = RuleContext(
                main=main,
                new=new,
                out=buffers,
                vocab=vocab,
                iteration=iteration,
                theta_prepass_done=theta_prepass_done,
                kernels=kernels,
            )
            started = time.perf_counter()
            if shard is None:
                rule.apply(ctx)
            else:
                rule.apply_shard(ctx, shard)
            return buffers, ctx.stats, time.perf_counter() - started

        for wave in self.waves:
            wave_started = time.perf_counter()
            tasks: List[Tuple[int, Optional[Tuple[int, int]]]] = []
            for index in wave:
                n_shards = plans.get(index)
                if n_shards is None:
                    tasks.append((index, None))
                else:
                    tasks.extend(
                        (index, (k, n_shards)) for k in range(n_shards)
                    )
            if process_session is not None:
                futures = [
                    (
                        index,
                        process_session.submit(
                            index,
                            shard,
                            main_manifest,
                            new_manifest,
                            iteration,
                            theta_prepass_done,
                        ),
                    )
                    for index, shard in tasks
                ]
                absorbed = 0
                try:
                    for index, future in futures:
                        name, entries, counts, elapsed = future.result()
                        buffers = InferredBuffers()
                        if name is not None:
                            segment_to_buffers(name, entries, buffers)
                        results[index].append((buffers, counts, elapsed))
                        absorbed += 1
                except BaseException:
                    # A task failed mid-wave: drain the remaining
                    # futures and unlink the (disowned) output
                    # segments of the siblings that completed, or
                    # they leak until reboot.
                    for _, future in futures[absorbed:]:
                        try:
                            name, _, _, _ = future.result()
                        except Exception:
                            continue
                        if name is not None:
                            discard_result_segment(name)
                    raise
            elif executor is not None and len(tasks) > 1:
                futures = [
                    (index, executor.submit(fire_local, index, shard))
                    for index, shard in tasks
                ]
                for index, future in futures:
                    results[index].append(future.result())
            else:
                for index, shard in tasks:
                    results[index].append(fire_local(index, shard))
            outcome.wave_seconds.append(time.perf_counter() - wave_started)

        # Deterministic commit order: absorb in catalogue rule order,
        # shard order within a rule.
        for index, rule in enumerate(self.rules):
            fired = results[index]
            if not fired:  # pragma: no cover - every rule fires
                continue
            name = rule.name
            if len(fired) > 1:
                outcome.rule_shards[name] = max(
                    outcome.rule_shards.get(name, 0), len(fired)
                )
            for buffers, counts, elapsed in fired:
                outcome.out.absorb(buffers)
                outcome.rule_seconds[name] = (
                    outcome.rule_seconds.get(name, 0.0) + elapsed
                )
                for rule_name, count in counts.items():
                    outcome.rule_counts[rule_name] = (
                        outcome.rule_counts.get(rule_name, 0) + count
                    )
        return outcome
