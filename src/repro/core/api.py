"""High-level convenience API over :class:`InferrayEngine`.

These helpers cover the common "one-shot" uses: materialize a triple
collection or file and get back decoded triples — the shape a downstream
user (or the Jena-style adapter) expects.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

from ..rdf.graph import Graph
from ..rdf.terms import Term, Triple
from ..rules.spec import Rule
from .engine import InferrayEngine, MaterializationStats


def infer(
    triples: Iterable[Triple],
    ruleset: Union[str, List[Rule]] = "rdfs-default",
    *,
    algorithm: str = "auto",
    backend: str = "auto",
) -> Graph:
    """Materialize ``triples`` under a ruleset; returns the closed graph.

    >>> from repro.rdf import iri, Triple, RDFS, RDF
    >>> human, mammal = iri("ex:human"), iri("ex:mammal")
    >>> bart = iri("ex:Bart")
    >>> g = infer([
    ...     Triple(human, RDFS.subClassOf, mammal),
    ...     Triple(bart, RDF.type, human),
    ... ])
    >>> Triple(bart, RDF.type, mammal) in g
    True
    """
    engine = InferrayEngine(ruleset, algorithm=algorithm, backend=backend)
    engine.load_triples(triples)
    engine.materialize()
    return Graph(engine.triples())


def infer_with_stats(
    triples: Iterable[Triple],
    ruleset: Union[str, List[Rule]] = "rdfs-default",
    *,
    algorithm: str = "auto",
    backend: str = "auto",
) -> Tuple[Graph, MaterializationStats]:
    """Like :func:`infer` but also returns the materialization stats."""
    engine = InferrayEngine(ruleset, algorithm=algorithm, backend=backend)
    engine.load_triples(triples)
    stats = engine.materialize()
    return Graph(engine.triples()), stats


def load_and_materialize(
    path: str,
    ruleset: Union[str, List[Rule]] = "rdfs-default",
    *,
    algorithm: str = "auto",
    backend: str = "auto",
) -> InferrayEngine:
    """Parse an N-Triples file, materialize, and return the engine."""
    engine = InferrayEngine(ruleset, algorithm=algorithm, backend=backend)
    engine.load_file(path)
    engine.materialize()
    return engine


class InferredModel:
    """A Jena-InfModel-style wrapper: asserted + inferred views.

    Mirrors the interface shape of Jena's ``InfModel`` (the paper ships
    a Jena-compliant adapter): construction takes the asserted triples,
    materialization is implicit, and the model answers pattern queries
    over the deductive closure.
    """

    def __init__(
        self,
        triples: Iterable[Triple],
        ruleset: Union[str, List[Rule]] = "rdfs-default",
        *,
        backend: str = "auto",
    ):
        self._asserted = list(triples)
        self._engine = InferrayEngine(ruleset, backend=backend)
        self._engine.load_triples(self._asserted)
        self._engine.materialize()

    @property
    def asserted(self) -> List[Triple]:
        """The originally asserted triples."""
        return list(self._asserted)

    def __len__(self) -> int:
        return self._engine.n_triples

    def __contains__(self, triple: Triple) -> bool:
        return self._engine.contains(triple)

    def list_statements(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ):
        """Pattern query over the closure (Jena's listStatements)."""
        return self._engine.query(subject, predicate, obj)

    def deductions(self) -> Graph:
        """Only the triples added by inference."""
        asserted = set(self._asserted)
        return Graph(t for t in self._engine.triples() if t not in asserted)
