"""Deprecated one-shot helpers, kept as thin shims over :class:`Store`.

Historically the public API was this pile of free functions
(``infer``, ``infer_with_stats``, ``load_and_materialize``) plus the
Jena-style :class:`InferredModel`.  The serving-grade entry point is
now the unified :class:`repro.Store` facade (lazy materialization,
snapshot reads, one query entry point, persistence); everything here
delegates to it and emits a :class:`DeprecationWarning`.

Migration map::

    infer(triples, ...)               -> Store(triples, ...).graph()
    infer_with_stats(triples, ...)    -> s = Store(triples, ...)
                                         s.materialize(); s.graph(), s.stats
    load_and_materialize(path, ...)   -> Store.from_file(path, ...)
    InferredModel(triples)            -> Store(triples)
      .list_statements(s, p, o)       ->   .query(s, p, o)
      .deductions()                   ->   Graph(.inferred())
"""

from __future__ import annotations

import warnings
from typing import Iterable, List, Optional, Tuple, Union

from ..rdf.graph import Graph
from ..rdf.terms import Term, Triple
from ..rules.spec import Rule
from .engine import InferrayEngine, MaterializationStats
from .store_api import Store


def _warn_deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.{old} is deprecated; use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


def infer(
    triples: Iterable[Triple],
    ruleset: Union[str, List[Rule]] = "rdfs-default",
    *,
    algorithm: str = "auto",
    backend: str = "auto",
) -> Graph:
    """Materialize ``triples`` under a ruleset; returns the closed graph.

    .. deprecated:: 1.1
        Use ``Store(triples, ...).graph()`` (or keep the Store around
        and query it directly).

    >>> from repro.rdf import iri, Triple, RDFS, RDF
    >>> human, mammal = iri("ex:human"), iri("ex:mammal")
    >>> bart = iri("ex:Bart")
    >>> g = infer([
    ...     Triple(human, RDFS.subClassOf, mammal),
    ...     Triple(bart, RDF.type, human),
    ... ])
    >>> Triple(bart, RDF.type, mammal) in g
    True
    """
    _warn_deprecated("infer()", "repro.Store(...).graph()")
    store = Store(
        list(triples), ruleset=ruleset, algorithm=algorithm, backend=backend
    )
    return store.graph()


def infer_with_stats(
    triples: Iterable[Triple],
    ruleset: Union[str, List[Rule]] = "rdfs-default",
    *,
    algorithm: str = "auto",
    backend: str = "auto",
) -> Tuple[Graph, MaterializationStats]:
    """Like :func:`infer` but also returns the materialization stats.

    .. deprecated:: 1.1
        Use ``Store.materialize()`` and ``Store.stats``.
    """
    _warn_deprecated(
        "infer_with_stats()", "repro.Store.materialize() / Store.stats"
    )
    store = Store(
        list(triples), ruleset=ruleset, algorithm=algorithm, backend=backend
    )
    stats = store.materialize()
    return store.graph(), stats


def load_and_materialize(
    path: str,
    ruleset: Union[str, List[Rule]] = "rdfs-default",
    *,
    algorithm: str = "auto",
    backend: str = "auto",
) -> InferrayEngine:
    """Parse an N-Triples file, materialize, and return the engine.

    .. deprecated:: 1.1
        Use ``Store.from_file(path, ...)`` — it materializes lazily and
        adds querying, snapshots and persistence.
    """
    _warn_deprecated("load_and_materialize()", "repro.Store.from_file()")
    store = Store.from_file(
        path, ruleset=ruleset, algorithm=algorithm, backend=backend
    )
    store.materialize()
    return store.engine


class InferredModel:
    """A Jena-InfModel-style wrapper: asserted + inferred views.

    .. deprecated:: 1.1
        Use :class:`repro.Store` — ``query()`` replaces
        ``list_statements()`` and ``Graph(store.inferred())`` replaces
        ``deductions()``.  This wrapper now delegates to a Store.
    """

    def __init__(
        self,
        triples: Iterable[Triple],
        ruleset: Union[str, List[Rule]] = "rdfs-default",
        *,
        backend: str = "auto",
    ):
        _warn_deprecated("InferredModel", "repro.Store")
        self._asserted = list(triples)
        self._store = Store(self._asserted, ruleset=ruleset, backend=backend)

    @property
    def asserted(self) -> List[Triple]:
        """The originally asserted triples."""
        return list(self._asserted)

    def __len__(self) -> int:
        return self._store.n_triples

    def __contains__(self, triple: Triple) -> bool:
        return self._store.contains(triple)

    def list_statements(
        self,
        subject: Optional[Term] = None,
        predicate: Optional[Term] = None,
        obj: Optional[Term] = None,
    ):
        """Pattern query over the closure (Jena's listStatements)."""
        return self._store.query(subject, predicate, obj)

    def deductions(self) -> Graph:
        """Only the triples added by inference.

        Diffs on encoded id triples inside the store — the closure is
        never decoded wholesale just to subtract the asserted set.
        """
        return Graph(self._store.inferred())
