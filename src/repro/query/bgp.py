"""Basic-graph-pattern matching over a materialized engine.

The paper's case for materialization: "inferred data can be consumed as
explicit data without integrating the inference engine with the runtime
query engine."  This module is that consumer — a small conjunctive
(SPARQL-BGP-style) query evaluator that runs over the *closed* store,
needing no inference of its own.

Hybrid mode (:mod:`repro.litemat`) preserves that property from the
evaluator's point of view: the ``engine`` handed to
:meth:`Query.execute` is the store facade, whose pattern lookups route
through the engine's read view — in hybrid mode a
:class:`repro.litemat.view.HybridTripleView` that answers
rdfs7/rdfs9-style patterns from the interval encoding.  The rewrite
composes *beneath* this module; nothing here changes per mode.

Variables are :class:`Var` instances (``Var("x")`` or the ``?name``
shorthand of :func:`parse_pattern`); evaluation binds them left to
right, driving each pattern through the engine's indexed
``query(s, p, o)`` lookups, most-selective pattern first.

The :class:`repro.Store` facade folds this evaluator into its unified
``query()`` entry point — ``store.query("?s rdf:type ex:Person")``
parses via :func:`parse_bgp` and executes here (see examples/ and
tests for full usage).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.engine import InferrayEngine
from ..rdf.terms import IRI, Literal, Term
from ..rdf.vocabulary import OWL, RDF, RDFS, XSD


@dataclass(frozen=True)
class Var:
    """A query variable (named, compared by name)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


PatternTerm = Union[Var, Term]
Bindings = Dict[Var, Term]


@dataclass(frozen=True)
class TriplePattern:
    """One BGP triple pattern: any position may be a Var or a term."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> List[Var]:
        """Variables of this pattern, in position order."""
        return [
            t
            for t in (self.subject, self.predicate, self.object)
            if isinstance(t, Var)
        ]

    def resolve(self, bindings: Bindings) -> "TriplePattern":
        """Substitute bound variables."""

        def sub(term: PatternTerm) -> PatternTerm:
            if isinstance(term, Var):
                return bindings.get(term, term)
            return term

        return TriplePattern(
            sub(self.subject), sub(self.predicate), sub(self.object)
        )

    def selectivity(self, bindings: Bindings) -> int:
        """Bound-position count under current bindings (higher = better)."""
        resolved = self.resolve(bindings)
        return sum(
            not isinstance(t, Var)
            for t in (resolved.subject, resolved.predicate, resolved.object)
        )


def parse_pattern(
    subject: Union[str, Term],
    predicate: Union[str, Term],
    obj: Union[str, Term],
) -> TriplePattern:
    """Convenience constructor: ``"?x"`` strings become variables,
    other strings become IRIs, terms pass through."""

    def convert(value: Union[str, Term]) -> PatternTerm:
        if isinstance(value, str):
            if value.startswith("?"):
                return Var(value[1:])
            return IRI(value)
        return value

    return TriplePattern(convert(subject), convert(predicate), convert(obj))


class BGPSyntaxError(ValueError):
    """Raised by :func:`parse_bgp` on malformed pattern text."""


#: Well-known prefixes expanded by :func:`parse_bgp`.
BGP_PREFIXES: Dict[str, str] = {
    "rdf": RDF.prefix,
    "rdfs": RDFS.prefix,
    "owl": OWL.prefix,
    "xsd": XSD.prefix,
}

_BGP_TOKEN = re.compile(
    r'<[^<>\s]*>'                                   # <iri>
    r'|"(?:[^"\\]|\\.)*"(?:\^\^<[^<>\s]*>|@[\w-]+)?'  # "literal"^^<dt> / @lang
    r'|\S+'                                         # var / prefixed / bare
)

_LITERAL_UNESCAPES = [
    ("\\n", "\n"), ("\\r", "\r"), ("\\t", "\t"),
    ('\\"', '"'), ("\\\\", "\\"),
]


def _bgp_term(token: str) -> PatternTerm:
    """One BGP token → Var or RDF term (see :func:`parse_bgp`)."""
    if token.startswith("?"):
        if len(token) == 1:
            raise BGPSyntaxError("'?' without a variable name")
        return Var(token[1:])
    if token == "a":  # the SPARQL/Turtle shorthand
        return RDF.type
    if token.startswith("<") and token.endswith(">"):
        return IRI(token[1:-1])
    if token.startswith('"'):
        match = re.fullmatch(
            r'"((?:[^"\\]|\\.)*)"(?:\^\^<([^<>\s]*)>|@([\w-]+))?', token
        )
        if match is None:
            raise BGPSyntaxError(f"malformed literal {token!r}")
        lexical, datatype, language = match.groups()
        for escaped, plain in _LITERAL_UNESCAPES:
            lexical = lexical.replace(escaped, plain)
        return Literal(lexical, datatype, language)
    prefix, colon, local = token.partition(":")
    if colon and prefix in BGP_PREFIXES:
        return IRI(BGP_PREFIXES[prefix] + local)
    # Anything else is taken verbatim as an IRI — the test/example
    # corpus uses compact "ex:name" IRIs that are literal strings.
    return IRI(token)


def parse_bgp(text: str) -> List[TriplePattern]:
    """Parse a BGP string like ``"?s rdf:type ex:Person"`` into patterns.

    Grammar (a pragmatic SPARQL-BGP subset): whitespace-separated
    triples of tokens, with statements separated by ``.`` (a lone dot
    token, a trailing dot on a token, or a newline at a statement
    boundary).  Tokens: ``?name`` variables, ``<iri>`` references,
    ``"literal"`` (optionally ``^^<datatype>`` or ``@lang``),
    ``prefix:local`` with the well-known prefixes of
    :data:`BGP_PREFIXES`, the ``a`` shorthand for ``rdf:type``, and
    bare strings (taken verbatim as IRIs).

    >>> parse_bgp("?s rdf:type ex:Person")
    [TriplePattern(subject=?s, predicate=IRI(value='http://www.w3.org/1999/02/22-rdf-syntax-ns#type'), object=IRI(value='ex:Person'))]
    """
    tokens: List[str] = []
    for raw in _BGP_TOKEN.findall(text):
        if raw == ".":
            tokens.append(".")
            continue
        # A trailing dot on a bare/prefixed token terminates a statement
        # (IRIs in angle brackets and literals keep their dots).
        if (
            raw.endswith(".")
            and not raw.startswith(("<", '"'))
            and len(raw) > 1
        ):
            tokens.append(raw[:-1])
            tokens.append(".")
        else:
            tokens.append(raw)

    patterns: List[TriplePattern] = []
    current: List[PatternTerm] = []
    for token in tokens:
        if token == ".":
            if current:
                raise BGPSyntaxError(
                    f"statement has {len(current)} term(s), expected 3: "
                    f"{text!r}"
                )
            continue
        current.append(_bgp_term(token))
        if len(current) == 3:
            patterns.append(TriplePattern(*current))
            current = []
    if current:
        raise BGPSyntaxError(
            f"trailing {len(current)} term(s) do not form a triple "
            f"pattern: {text!r}"
        )
    if not patterns:
        raise BGPSyntaxError(f"no triple patterns found in {text!r}")
    return patterns


class Query:
    """A conjunctive query: a sequence of triple patterns.

    ``execute`` yields one bindings dict per solution; ``select``
    projects chosen variables as tuples (with duplicate solutions
    collapsed, SELECT DISTINCT semantics).
    """

    def __init__(self, patterns: Sequence[TriplePattern]):
        if not patterns:
            raise ValueError("a query needs at least one pattern")
        self.patterns = list(patterns)

    @classmethod
    def parse(cls, *pattern_triples) -> "Query":
        """Build from (s, p, o) tuples using :func:`parse_pattern`."""
        return cls([parse_pattern(*pattern) for pattern in pattern_triples])

    def _match_pattern(
        self,
        engine: InferrayEngine,
        pattern: TriplePattern,
        bindings: Bindings,
    ) -> Iterator[Bindings]:
        resolved = pattern.resolve(bindings)
        query_args: List[Optional[Term]] = []
        for term in (resolved.subject, resolved.predicate, resolved.object):
            query_args.append(None if isinstance(term, Var) else term)
        for triple in engine.query(*query_args):
            new_bindings = dict(bindings)
            consistent = True
            for position, value in zip(
                (resolved.subject, resolved.predicate, resolved.object),
                (triple.subject, triple.predicate, triple.object),
            ):
                if isinstance(position, Var):
                    bound = new_bindings.get(position)
                    if bound is None:
                        new_bindings[position] = value
                    elif bound != value:
                        consistent = False
                        break
            if consistent:
                yield new_bindings

    def execute(self, engine: InferrayEngine) -> Iterator[Bindings]:
        """Yield every solution's bindings over the materialized store."""

        def recurse(
            remaining: List[TriplePattern], bindings: Bindings
        ) -> Iterator[Bindings]:
            if not remaining:
                yield bindings
                return
            # Most selective pattern under current bindings first.
            best_index = max(
                range(len(remaining)),
                key=lambda i: remaining[i].selectivity(bindings),
            )
            pattern = remaining[best_index]
            rest = remaining[:best_index] + remaining[best_index + 1:]
            for extended in self._match_pattern(engine, pattern, bindings):
                yield from recurse(rest, extended)

        yield from recurse(self.patterns, {})

    def select(
        self, engine: InferrayEngine, *variables: Union[Var, str]
    ) -> List[Tuple[Term, ...]]:
        """Distinct projected solutions, in first-seen order."""
        projection = [
            v if isinstance(v, Var) else Var(v.lstrip("?")) for v in variables
        ]
        seen = {}
        for bindings in self.execute(engine):
            row = tuple(bindings[v] for v in projection)
            if row not in seen:
                seen[row] = None
        return list(seen)

    def ask(self, engine: InferrayEngine) -> bool:
        """True iff the query has at least one solution."""
        return next(self.execute(engine), None) is not None
