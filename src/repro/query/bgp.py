"""Basic-graph-pattern matching over a materialized engine.

The paper's case for materialization: "inferred data can be consumed as
explicit data without integrating the inference engine with the runtime
query engine."  This module is that consumer — a small conjunctive
(SPARQL-BGP-style) query evaluator that runs over the *closed* store,
needing no inference of its own.

Variables are :class:`Var` instances (``Var("x")`` or the ``?name``
shorthand of :func:`parse_pattern`); evaluation binds them left to
right, driving each pattern through the engine's indexed
``query(s, p, o)`` lookups, most-selective pattern first.

>>> from repro import infer ... (see examples/ and tests for full usage)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.engine import InferrayEngine
from ..rdf.terms import IRI, Term


@dataclass(frozen=True)
class Var:
    """A query variable (named, compared by name)."""

    name: str

    def __repr__(self) -> str:
        return f"?{self.name}"


PatternTerm = Union[Var, Term]
Bindings = Dict[Var, Term]


@dataclass(frozen=True)
class TriplePattern:
    """One BGP triple pattern: any position may be a Var or a term."""

    subject: PatternTerm
    predicate: PatternTerm
    object: PatternTerm

    def variables(self) -> List[Var]:
        """Variables of this pattern, in position order."""
        return [
            t
            for t in (self.subject, self.predicate, self.object)
            if isinstance(t, Var)
        ]

    def resolve(self, bindings: Bindings) -> "TriplePattern":
        """Substitute bound variables."""

        def sub(term: PatternTerm) -> PatternTerm:
            if isinstance(term, Var):
                return bindings.get(term, term)
            return term

        return TriplePattern(
            sub(self.subject), sub(self.predicate), sub(self.object)
        )

    def selectivity(self, bindings: Bindings) -> int:
        """Bound-position count under current bindings (higher = better)."""
        resolved = self.resolve(bindings)
        return sum(
            not isinstance(t, Var)
            for t in (resolved.subject, resolved.predicate, resolved.object)
        )


def parse_pattern(
    subject: Union[str, Term],
    predicate: Union[str, Term],
    obj: Union[str, Term],
) -> TriplePattern:
    """Convenience constructor: ``"?x"`` strings become variables,
    other strings become IRIs, terms pass through."""

    def convert(value: Union[str, Term]) -> PatternTerm:
        if isinstance(value, str):
            if value.startswith("?"):
                return Var(value[1:])
            return IRI(value)
        return value

    return TriplePattern(convert(subject), convert(predicate), convert(obj))


class Query:
    """A conjunctive query: a sequence of triple patterns.

    ``execute`` yields one bindings dict per solution; ``select``
    projects chosen variables as tuples (with duplicate solutions
    collapsed, SELECT DISTINCT semantics).
    """

    def __init__(self, patterns: Sequence[TriplePattern]):
        if not patterns:
            raise ValueError("a query needs at least one pattern")
        self.patterns = list(patterns)

    @classmethod
    def parse(cls, *pattern_triples) -> "Query":
        """Build from (s, p, o) tuples using :func:`parse_pattern`."""
        return cls([parse_pattern(*pattern) for pattern in pattern_triples])

    def _match_pattern(
        self,
        engine: InferrayEngine,
        pattern: TriplePattern,
        bindings: Bindings,
    ) -> Iterator[Bindings]:
        resolved = pattern.resolve(bindings)
        query_args: List[Optional[Term]] = []
        for term in (resolved.subject, resolved.predicate, resolved.object):
            query_args.append(None if isinstance(term, Var) else term)
        for triple in engine.query(*query_args):
            new_bindings = dict(bindings)
            consistent = True
            for position, value in zip(
                (resolved.subject, resolved.predicate, resolved.object),
                (triple.subject, triple.predicate, triple.object),
            ):
                if isinstance(position, Var):
                    bound = new_bindings.get(position)
                    if bound is None:
                        new_bindings[position] = value
                    elif bound != value:
                        consistent = False
                        break
            if consistent:
                yield new_bindings

    def execute(self, engine: InferrayEngine) -> Iterator[Bindings]:
        """Yield every solution's bindings over the materialized store."""

        def recurse(
            remaining: List[TriplePattern], bindings: Bindings
        ) -> Iterator[Bindings]:
            if not remaining:
                yield bindings
                return
            # Most selective pattern under current bindings first.
            best_index = max(
                range(len(remaining)),
                key=lambda i: remaining[i].selectivity(bindings),
            )
            pattern = remaining[best_index]
            rest = remaining[:best_index] + remaining[best_index + 1:]
            for extended in self._match_pattern(engine, pattern, bindings):
                yield from recurse(rest, extended)

        yield from recurse(self.patterns, {})

    def select(
        self, engine: InferrayEngine, *variables: Union[Var, str]
    ) -> List[Tuple[Term, ...]]:
        """Distinct projected solutions, in first-seen order."""
        projection = [
            v if isinstance(v, Var) else Var(v.lstrip("?")) for v in variables
        ]
        seen = {}
        for bindings in self.execute(engine):
            row = tuple(bindings[v] for v in projection)
            if row not in seen:
                seen[row] = None
        return list(seen)

    def ask(self, engine: InferrayEngine) -> bool:
        """True iff the query has at least one solution."""
        return next(self.execute(engine), None) is not None
