"""BGP query layer over materialized stores (consumer-side, no inference)."""

from .bgp import Query, TriplePattern, Var, parse_pattern

__all__ = ["Query", "TriplePattern", "Var", "parse_pattern"]
