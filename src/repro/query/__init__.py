"""BGP query layer over materialized stores (consumer-side, no inference)."""

from .bgp import (
    BGPSyntaxError,
    Query,
    TriplePattern,
    Var,
    parse_bgp,
    parse_pattern,
)

__all__ = [
    "BGPSyntaxError",
    "Query",
    "TriplePattern",
    "Var",
    "parse_bgp",
    "parse_pattern",
]
