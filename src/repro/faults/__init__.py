"""Deterministic fault injection for chaos testing.

The engine's durability seams (atomic save, shared-memory attach,
worker processes, the serving flush pipeline) call
:func:`repro.faults.fire` with a labeled site name.  When nothing is
armed the call is a cheap no-op; when a matching
:class:`~repro.faults.registry.FaultSpec` is armed the site raises a
deterministic error (or kills the process) so tests can prove the
recovery paths without races or monkeypatching internals.

Arm faults either in-process::

    with repro.faults.inject("persist.write"):
        store.save(path)          # raises InjectedFault mid-save

or across process boundaries via ``$REPRO_FAULTS`` (worker processes
and subprocesses inherit the environment)::

    REPRO_FAULTS="parallel.worker:kill:after=1" python -m pytest ...

See :mod:`repro.faults.registry` for the spec grammar.
"""

from repro.faults.registry import (
    FAULT_SITES,
    FaultSpec,
    InjectedFault,
    active_specs,
    fire,
    inject,
    parse_faults,
    reset,
)

__all__ = [
    "FAULT_SITES",
    "FaultSpec",
    "InjectedFault",
    "active_specs",
    "fire",
    "inject",
    "parse_faults",
    "reset",
]
