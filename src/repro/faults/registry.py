"""Seeded fault-injection registry.

Spec grammar (one entry, ``;``-separated in ``$REPRO_FAULTS``)::

    site[:action][:key=value]...

``site``
    One of :data:`FAULT_SITES` (unknown sites are accepted with a
    warning so older builds tolerate newer specs).
``action``
    ``raise`` (default) raises a deterministic exception at the seam —
    :class:`InjectedFault` everywhere except ``shm.attach``, which
    raises :class:`FileNotFoundError` to mirror the real failure of a
    vanished shared-memory segment.  ``kill`` terminates the current
    process with ``os._exit`` (exit code :data:`KILL_EXIT_CODE`),
    simulating kill -9 at the seam.
``after=N``
    Skip the first ``N`` hits of the site before firing (default 0).
``times=N``
    Fire at most ``N`` times (default 1); ``times=-1`` fires forever.
``p=F`` / ``seed=N``
    Fire each eligible hit with probability ``F`` drawn from a
    dedicated ``random.Random(seed)`` stream, so a given spec produces
    the same hit pattern on every run.

Examples::

    persist.write
    parallel.worker:kill:after=1
    serving.flush:raise:after=1:times=-1
    shm.attach:raise:p=0.5:seed=7

State (hit counters, RNG streams) is per-process; worker processes
and subprocesses re-arm from ``$REPRO_FAULTS`` on their first
:func:`fire` call, which is how :func:`inject` reaches across fork and
spawn boundaries.
"""

from __future__ import annotations

import os
import random
import warnings
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Union

ENV_VAR = "REPRO_FAULTS"

#: Exit code used by ``action=kill`` (EX_SOFTWARE), distinct from the
#: interpreter's generic 1 so tests can assert the injected death.
KILL_EXIT_CODE = 70

#: Instrumented seams.  Unknown sites parse with a warning so spec
#: strings stay forward-compatible.
FAULT_SITES = (
    "persist.write",
    "persist.fsync",
    "parallel.worker",
    "shm.attach",
    "serving.flush",
    "serving.wal",
)

_ACTIONS = ("raise", "kill")


class InjectedFault(RuntimeError):
    """Deterministic error raised by an armed ``raise`` fault site."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault: where, what, and when it fires."""

    site: str
    action: str = "raise"
    after: int = 0
    times: int = 1
    p: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} "
                f"(expected one of {_ACTIONS})"
            )
        if self.after < 0:
            raise ValueError("after= must be >= 0")
        if self.times < -1:
            raise ValueError("times= must be >= 0, or -1 for unlimited")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError("p= must be in [0, 1]")

    def to_token(self) -> str:
        """Serialize back to the spec grammar (for ``$REPRO_FAULTS``)."""
        return (
            f"{self.site}:{self.action}"
            f":after={self.after}:times={self.times}"
            f":p={self.p!r}:seed={self.seed}"
        )


class _Armed:
    """Mutable per-process firing state for one spec."""

    __slots__ = ("spec", "hits", "fired", "rng")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self.hits = 0
        self.fired = 0
        self.rng = random.Random(spec.seed)


_armed: Dict[str, _Armed] = {}
#: The $REPRO_FAULTS value the current ``_armed`` table was built from.
#: ``None`` forces a reload on the next fire() (initial state).
_env_signature: Optional[str] = None


def parse_faults(text: str) -> List[FaultSpec]:
    """Parse a ``;``-separated spec string into :class:`FaultSpec` s."""
    specs = []
    for token in text.split(";"):
        token = token.strip()
        if token:
            specs.append(_parse_entry(token))
    return specs


def _parse_entry(token: str) -> FaultSpec:
    parts = token.split(":")
    site = parts[0].strip()
    if not site:
        raise ValueError(f"empty fault site in spec {token!r}")
    if site not in FAULT_SITES:
        warnings.warn(
            f"unknown fault site {site!r} (known: {', '.join(FAULT_SITES)})",
            stacklevel=3,
        )
    kwargs: Dict[str, Union[str, int, float]] = {}
    for part in parts[1:]:
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            if part not in _ACTIONS:
                raise ValueError(
                    f"unknown fault action {part!r} in spec {token!r}"
                )
            kwargs["action"] = part
            continue
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key in ("after", "times", "seed"):
            kwargs[key] = int(value)
        elif key == "p":
            kwargs[key] = float(value)
        else:
            raise ValueError(f"unknown fault option {key!r} in spec {token!r}")
    return FaultSpec(site=site, **kwargs)  # type: ignore[arg-type]


def _rearm(specs: List[FaultSpec], signature: Optional[str]) -> None:
    global _env_signature
    _armed.clear()
    for spec in specs:
        _armed[spec.site] = _Armed(spec)
    _env_signature = signature


def _sync_with_env() -> None:
    """Re-arm from ``$REPRO_FAULTS`` whenever its value changes.

    This is how forked/spawned worker processes (which inherit the
    environment but not this module's state) pick up the specs armed
    by the parent's :func:`inject` context manager.
    """
    env = os.environ.get(ENV_VAR, "")
    if env == _env_signature:
        return
    try:
        specs = parse_faults(env)
    except ValueError as error:
        warnings.warn(f"ignoring malformed $REPRO_FAULTS: {error}")
        specs = []
    _rearm(specs, env)


def fire(site: str, detail: str = "") -> None:
    """Trip the fault armed at ``site``, if any.

    No-op (one dict lookup) when the site is not armed.  Called from
    the instrumented seams; never call it with untrusted input.
    """
    _sync_with_env()
    armed = _armed.get(site)
    if armed is None:
        return
    spec = armed.spec
    armed.hits += 1
    if armed.hits <= spec.after:
        return
    if spec.times >= 0 and armed.fired >= spec.times:
        return
    if spec.p < 1.0 and armed.rng.random() >= spec.p:
        return
    armed.fired += 1
    message = f"injected fault at {site}"
    if detail:
        message = f"{message} ({detail})"
    if spec.action == "kill":
        os._exit(KILL_EXIT_CODE)
    if site == "shm.attach":
        # Mirror the real failure mode: the segment vanished.
        raise FileNotFoundError(message)
    raise InjectedFault(message)


def reset() -> None:
    """Disarm every site and clear hit counters (test hygiene)."""
    _rearm([], os.environ.get(ENV_VAR, ""))


def active_specs() -> Tuple[FaultSpec, ...]:
    """The specs currently armed in this process."""
    _sync_with_env()
    return tuple(armed.spec for armed in _armed.values())


@contextmanager
def inject(*specs: Union[str, FaultSpec]) -> Iterator[None]:
    """Arm ``specs`` for the duration of the block.

    Accepts spec strings (the grammar above) or :class:`FaultSpec`
    objects.  Also exports the specs via ``$REPRO_FAULTS`` so worker
    processes forked or spawned *inside* the block inherit them; both
    the registry and the environment are restored on exit.
    """
    parsed: List[FaultSpec] = []
    for spec in specs:
        if isinstance(spec, FaultSpec):
            parsed.append(spec)
        else:
            parsed.extend(parse_faults(spec))
    previous_env = os.environ.get(ENV_VAR)
    signature = ";".join(spec.to_token() for spec in parsed)
    os.environ[ENV_VAR] = signature
    _rearm(parsed, signature)
    try:
        yield
    finally:
        if previous_env is None:
            os.environ.pop(ENV_VAR, None)
        else:
            os.environ[ENV_VAR] = previous_env
        _rearm([], None)  # force re-sync from env on next fire()
