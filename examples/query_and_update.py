#!/usr/bin/env python3
"""Materialize once, query many times, update incrementally.

The workflow the paper motivates for forward-chaining: pay for
materialization up front, then serve conjunctive queries from the
closed store with no inference at query time.  Through the ``Store``
facade the orchestration is implicit — ``add()`` marks the closure
stale, and the next read absorbs the delta with incremental
(delta-driven) re-materialization instead of a full re-run.

Run:  python examples/query_and_update.py
"""

from repro import Query, Store
from repro.datasets import lubm_like
from repro.rdf import IRI, RDF, Triple

LUBM = "http://example.org/lubm#"


def lubm(name: str) -> IRI:
    return IRI(LUBM + name)


def main() -> None:
    store = Store(lubm_like(10), ruleset="rdfs-plus")
    stats = store.materialize()
    print(
        f"Materialized {stats.n_total:,} triples "
        f"({stats.n_inferred:,} inferred) in "
        f"{stats.total_seconds * 1000:.0f} ms.\n"
    )

    # Q1: every person in every organization — answered purely from
    # materialized data (memberOf ⊒ worksFor ⊒ headOf, so heads and
    # professors appear without any query-time reasoning).
    members = store.select(
        Query.parse(("?person", LUBM + "memberOf", "?org")),
        "person",
        "org",
    )
    print(f"Q1  memberOf pairs (incl. via subPropertyOf): {len(members)}")

    # Q2: a join — graduate students and their advisors' departments.
    advisors = store.select(
        Query.parse(
            ("?student", RDF.type, lubm("GraduateStudent")),
            ("?student", LUBM + "advisor", "?prof"),
            ("?prof", LUBM + "worksFor", "?dept"),
        ),
        "student",
        "prof",
        "dept",
    )
    print(f"Q2  grad-student/advisor/department joins:    {len(advisors)}")

    # Q3: transitive subOrganizationOf is already closed.
    in_universities = store.select(
        Query.parse(
            ("?org", LUBM + "subOrganizationOf", "?univ"),
            ("?univ", RDF.type, lubm("University")),
        ),
        "org",
    )
    print(f"Q3  organizations under a university:         {len(in_universities)}")

    # Incremental update: a new research group joins department 0.
    # add() is lazy — the next read triggers a delta-driven fixed
    # point that derives only the consequences of the new triples.
    group = lubm("Group_new")
    store.add(
        [
            Triple(group, RDF.type, lubm("ResearchGroup")),
            Triple(group, lubm("subOrganizationOf"), lubm("Department0")),
        ]
    )
    delta_stats = store.materialize()
    print(
        f"\nIncremental update: +{delta_stats.n_inferred} triples in "
        f"{delta_stats.total_seconds * 1000:.1f} ms "
        f"({delta_stats.iterations} delta iterations)."
    )

    # The new group is immediately visible transitively under its
    # university, without a full re-materialization.
    reachable = store.select(
        Query.parse((group, LUBM + "subOrganizationOf", "?up")), "up"
    )
    print(f"The new group now sits under {len(reachable)} organizations:")
    for (org,) in reachable:
        print("  ", org)
    assert any("University" in str(org) for org, in reachable)


if __name__ == "__main__":
    main()
