#!/usr/bin/env python3
"""Taxonomy reasoning: deep class hierarchies with instance typing.

Builds a biological-style taxonomy (a deep subClassOf tree), types a
population of individuals at the leaves, and materializes under
RDFS-default — the CAX-SCO + SCM-SCO workload that dominates
real-world RDFS inference (the paper's Yago/Wikipedia scenario).

Run:  python examples/taxonomy_reasoning.py
"""

import random
import time

from repro import InferrayEngine
from repro.rdf import IRI, RDF, RDFS, Triple

RANKS = [
    "LifeForm", "Kingdom", "Phylum", "Class", "Order",
    "Family", "Genus", "Species",
]


def build_taxonomy(branching: int = 3, seed: int = 7):
    """A taxonomy tree: `branching` children per node, 7 levels deep."""
    rng = random.Random(seed)
    triples = []
    leaves = []
    frontier = [IRI("tax:LifeForm")]
    for depth, rank in enumerate(RANKS[1:], start=1):
        next_frontier = []
        for parent in frontier:
            for index in range(branching):
                node = IRI(f"tax:{rank}_{len(triples)}_{index}")
                triples.append(Triple(node, RDFS.subClassOf, parent))
                next_frontier.append(node)
        frontier = next_frontier
    leaves = frontier
    # A population typed at random leaf species.
    individuals = []
    for i in range(2_000):
        individual = IRI(f"tax:specimen{i}")
        triples.append(
            Triple(individual, RDF.type, rng.choice(leaves))
        )
        individuals.append(individual)
    return triples, leaves, individuals


def main() -> None:
    triples, leaves, individuals = build_taxonomy()
    print(
        f"Taxonomy: {len(leaves)} species, "
        f"{len(triples) - len(individuals)} subClassOf edges, "
        f"{len(individuals)} specimens."
    )

    engine = InferrayEngine("rdfs-default")
    engine.load_triples(triples)
    started = time.perf_counter()
    stats = engine.materialize()
    elapsed = time.perf_counter() - started

    print(
        f"Materialized {stats.n_inferred:,} triples in {elapsed * 1000:.0f} ms"
        f" ({stats.triples_per_second:,.0f} triples/s)."
    )

    # Every specimen now carries its full lineage, 8 types deep.
    specimen = individuals[0]
    lineage = sorted(
        t.object.value for t in engine.query(specimen, RDF.type, None)
    )
    print(f"\nLineage of {specimen} ({len(lineage)} types):")
    for type_iri in lineage:
        print("  ", type_iri)

    # The root class subsumes everything.
    root_members = sum(
        1 for _ in engine.query(None, RDF.type, IRI("tax:LifeForm"))
    )
    print(f"\nMembers of tax:LifeForm (the root): {root_members}")
    assert root_members == len(individuals)


if __name__ == "__main__":
    main()
