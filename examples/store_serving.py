#!/usr/bin/env python3
"""Serving-grade store workflow: snapshots, mutation, persistence.

Demonstrates the three Store capabilities a serving deployment leans
on:

1. **Snapshot-isolated reads** — a request handler takes a
   ``snapshot()`` and answers from a consistent closure while writers
   keep mutating the store (including deletions, which rebuild).
2. **Lazy re-materialization** — ``add()``/``remove()`` only mark the
   closure stale; the next read pays for exactly one refresh.
3. **Persistence** — ``save()`` serializes the dictionary plus the
   sorted pair arrays; ``Store.load()`` restores the closure in
   O(read), so a warm replica never re-runs inference.

Run:  python examples/store_serving.py
"""

import os
import tempfile

from repro import Store
from repro.rdf import RDF, RDFS, Triple, iri

EX = "http://example.org/"


def ex(name: str) -> "iri":
    return iri(EX + name)


def main() -> None:
    store = Store(
        [
            Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
            Triple(ex("mammal"), RDFS.subClassOf, ex("animal")),
            Triple(ex("Bart"), RDF.type, ex("human")),
            Triple(ex("SantasHelper"), RDF.type, ex("dog")),
            Triple(ex("dog"), RDFS.subClassOf, ex("mammal")),
        ]
    )
    print(f"Closure: {store.n_triples} triples "
          f"({len(list(store.inferred()))} inferred).")

    # A reader pins the current closure...
    snapshot = store.snapshot()
    animals_before = {s["x"] for s in snapshot.query("?x a " + EX + "animal")}
    print(f"Snapshot sees {len(animals_before)} animals.")

    # ...while a writer mutates the store: one addition, one deletion.
    store.add(Triple(ex("Lisa"), RDF.type, ex("human")))
    store.remove(Triple(ex("SantasHelper"), RDF.type, ex("dog")))

    animals_now = {s["x"] for s in store.query("?x a " + EX + "animal")}
    animals_snap = {s["x"] for s in snapshot.query("?x a " + EX + "animal")}
    print(f"Store now sees {len(animals_now)} animals "
          f"(+Lisa, -SantasHelper); snapshot still {len(animals_snap)}.")
    assert animals_snap == animals_before
    assert ex("Lisa") in animals_now
    assert ex("SantasHelper") not in animals_now

    # Persist the closed store and reload it without inference.
    path = os.path.join(tempfile.mkdtemp(), "taxonomy.store")
    n_bytes = store.save(path)
    replica = Store.load(path)
    print(f"Saved {n_bytes:,} bytes; replica serves {replica.n_triples} "
          "triples without re-running inference.")
    assert set(replica.triples()) == set(store.triples())
    assert replica.engine.stats is None  # no materialization ran
    answers = replica.query("?who a " + EX + "mammal")
    print(f"Replica answers ?who a ex:mammal -> "
          f"{sorted(str(s['who']) for s in answers)}")
    os.unlink(path)


if __name__ == "__main__":
    main()
