#!/usr/bin/env python3
"""Serving-grade store workflow: snapshots, mutation, persistence.

Demonstrates the three Store capabilities a serving deployment leans
on:

1. **Snapshot-isolated reads** — a request handler takes a
   ``snapshot()`` and answers from a consistent closure while writers
   keep mutating the store (including deletions, which rebuild).
2. **Lazy re-materialization** — ``add()``/``remove()`` only mark the
   closure stale; the next read pays for exactly one refresh.
3. **Persistence** — ``save()`` serializes the dictionary plus the
   sorted pair arrays; ``Store.load()`` restores the closure in
   O(read), so a warm replica never re-runs inference.
4. **The HTTP server** — ``repro.serving.ServerThread`` wraps the
   same store in the asyncio reasoning server: reads answer from
   published snapshot epochs, writes coalesce through the mutation
   queue, and ``/metrics`` exposes the flush/staleness gauges.

Run:  python examples/store_serving.py
"""

import http.client
import json
import os
import tempfile
import urllib.parse

from repro import Store
from repro.rdf import RDF, RDFS, Triple, iri
from repro.serving import ServerThread

EX = "http://example.org/"


def ex(name: str) -> "iri":
    return iri(EX + name)


def main() -> None:
    store = Store(
        [
            Triple(ex("human"), RDFS.subClassOf, ex("mammal")),
            Triple(ex("mammal"), RDFS.subClassOf, ex("animal")),
            Triple(ex("Bart"), RDF.type, ex("human")),
            Triple(ex("SantasHelper"), RDF.type, ex("dog")),
            Triple(ex("dog"), RDFS.subClassOf, ex("mammal")),
        ]
    )
    print(f"Closure: {store.n_triples} triples "
          f"({len(list(store.inferred()))} inferred).")

    # A reader pins the current closure...
    snapshot = store.snapshot()
    animals_before = {s["x"] for s in snapshot.query("?x a " + EX + "animal")}
    print(f"Snapshot sees {len(animals_before)} animals.")

    # ...while a writer mutates the store: one addition, one deletion.
    store.add(Triple(ex("Lisa"), RDF.type, ex("human")))
    store.remove(Triple(ex("SantasHelper"), RDF.type, ex("dog")))

    animals_now = {s["x"] for s in store.query("?x a " + EX + "animal")}
    animals_snap = {s["x"] for s in snapshot.query("?x a " + EX + "animal")}
    print(f"Store now sees {len(animals_now)} animals "
          f"(+Lisa, -SantasHelper); snapshot still {len(animals_snap)}.")
    assert animals_snap == animals_before
    assert ex("Lisa") in animals_now
    assert ex("SantasHelper") not in animals_now

    # Persist the closed store and reload it without inference.
    with tempfile.TemporaryDirectory() as tmpdir:
        path = os.path.join(tmpdir, "taxonomy.store")
        n_bytes = store.save(path)
        replica = Store.load(path)
        print(f"Saved {n_bytes:,} bytes; replica serves {replica.n_triples} "
              "triples without re-running inference.")
        assert set(replica.triples()) == set(store.triples())
        assert replica.engine.stats is None  # no materialization ran
        answers = replica.query("?who a " + EX + "mammal")
        print(f"Replica answers ?who a ex:mammal -> "
              f"{sorted(str(s['who']) for s in answers)}")

    # Serve the replica over HTTP: readers pin snapshot epochs while
    # writes coalesce through the mutation queue.
    with ServerThread(replica, port=0) as handle:
        host, port = handle.address
        conn = http.client.HTTPConnection(host, port, timeout=30)

        def call(method, path, body=None):
            conn.request(method, path, body=body)
            response = conn.getresponse()
            return response.status, response.read()

        status, body = call("GET", "/health")
        health = json.loads(body)
        print(f"GET /health -> {status} {health['status']}, "
              f"epoch {health['epoch']}, {health['n_triples']} triples")

        nt = f"<{EX}Maggie> <{RDF.type.value}> <{EX}human> .\n"
        status, body = call("POST", "/add?wait=1", nt)
        landed = json.loads(body)
        print(f"POST /add?wait=1 -> {status}, flushed at "
              f"epoch {landed['epoch']}")

        bgp = urllib.parse.quote(f"?who a <{EX}mammal>")
        status, body = call("GET", f"/query?q={bgp}")
        payload = json.loads(body)
        print(f"GET /query -> {payload['n']} mammals at "
              f"epoch {payload['epoch']}")
        assert f"<{EX}Maggie>" in {s["who"] for s in payload["solutions"]}

        status, body = call("GET", "/metrics")
        flushes = [line for line in body.decode().splitlines()
                   if line.startswith("repro_serving_flush_total")]
        print(f"GET /metrics -> {flushes[0]}")
        conn.close()


if __name__ == "__main__":
    main()
