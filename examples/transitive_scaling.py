#!/usr/bin/env python3
"""Transitive-closure scaling: the paper's §6.1 experiment, hands-on.

Materializes subClassOf chains of growing length with (a) Inferray's
Nuutila pre-pass and (b) the iterative self-join θ-rule, printing the
quadratic output growth and the widening speed gap — the paper's first
contribution claim in one screenful.

Run:  python examples/transitive_scaling.py
"""

import time

from repro import InferrayEngine, MaterializationTimeout
from repro.datasets import chain_closure_size, subclass_chain
from repro.rules import IterativeTransitivityRule
from repro.rules.table5 import make_rules

LENGTHS = [100, 250, 500, 1000]
ITERATIVE_TIMEOUT = 20.0


def timed_materialize(engine, timeout=None):
    started = time.perf_counter()
    engine.materialize(timeout_seconds=timeout)
    return time.perf_counter() - started


def main() -> None:
    print(f"{'chain':>6} {'closure':>10} {'nuutila':>10} "
          f"{'iterative':>10} {'speedup':>8}")
    for length in LENGTHS:
        data = subclass_chain(length)

        nuutila = InferrayEngine(make_rules(["SCM-SCO"]))
        nuutila.load_triples(data)
        nuutila_seconds = timed_materialize(nuutila)
        assert nuutila.n_triples == chain_closure_size(length)

        iterative = InferrayEngine(
            [IterativeTransitivityRule("ITER", "subClassOf")]
        )
        iterative.load_triples(data)
        try:
            iterative_seconds = timed_materialize(
                iterative, timeout=ITERATIVE_TIMEOUT
            )
            iterative_cell = f"{iterative_seconds * 1000:8.0f}ms"
            speedup = f"{iterative_seconds / nuutila_seconds:7.1f}x"
        except MaterializationTimeout:
            iterative_cell = "   timeout"
            speedup = "      ∞"
        print(
            f"{length:>6} {chain_closure_size(length):>10,} "
            f"{nuutila_seconds * 1000:8.0f}ms {iterative_cell} {speedup}"
        )

    print(
        "\nThe closure output grows quadratically (n·(n−1)/2); the"
        "\nNuutila pre-pass pays one linear translation and closes in a"
        "\nsingle pass, while iterative rule application re-sorts and"
        "\nre-deduplicates the growing table every iteration."
    )


if __name__ == "__main__":
    main()
