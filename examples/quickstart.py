#!/usr/bin/env python3
"""Quickstart: parse N-Triples, materialize RDFS, inspect the result.

This is the paper's introduction example: once ``human ⊑ mammal ⊑
animal`` is asserted and Bart is typed ``human``, forward-chaining
materialization makes the implicit types explicit.

Run:  python examples/quickstart.py
"""

from repro import InferrayEngine
from repro.rdf import RDF, RDFS, parse, serialize

DOCUMENT = """
# The paper's running example (§1), as N-Triples.
<http://example.org/human>  <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://example.org/mammal> .
<http://example.org/mammal> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://example.org/animal> .
<http://example.org/Bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://example.org/human> .
<http://example.org/Lisa> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://example.org/human> .
"""


def main() -> None:
    triples = list(parse(DOCUMENT))
    print(f"Asserted {len(triples)} triples.")

    engine = InferrayEngine("rdfs-default")
    engine.load_triples(triples)
    stats = engine.materialize()

    print(
        f"Materialized {stats.n_inferred} new triples in "
        f"{stats.iterations} iteration(s) "
        f"({stats.total_seconds * 1000:.1f} ms, "
        f"closure pre-pass produced {stats.closure_pairs} pairs)."
    )
    print("\nFull closure:")
    print(serialize(sorted(engine.triples(), key=lambda t: t.n3())))

    # Pattern queries run against the closure.
    bart = next(iter(engine.query(None, RDF.type, None))).subject
    print(f"All types of {bart}:")
    for triple in engine.query(bart, RDF.type, None):
        print("  ", triple.object)

    # The schema itself was closed too (SCM-SCO).
    print("\nsubClassOf closure:")
    for triple in engine.query(None, RDFS.subClassOf, None):
        print("  ", triple.subject, "⊑", triple.object)


if __name__ == "__main__":
    main()
