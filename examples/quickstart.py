#!/usr/bin/env python3
"""Quickstart: build a Store, let it materialize lazily, query it.

This is the paper's introduction example: once ``human ⊑ mammal ⊑
animal`` is asserted and Bart is typed ``human``, forward-chaining
materialization makes the implicit types explicit.  The ``repro.Store``
facade hides the load/materialize orchestration — the first read
triggers inference.

Run:  python examples/quickstart.py
"""

from repro import Store
from repro.rdf import RDF, RDFS, parse, serialize

DOCUMENT = """
# The paper's running example (§1), as N-Triples.
<http://example.org/human>  <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://example.org/mammal> .
<http://example.org/mammal> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://example.org/animal> .
<http://example.org/Bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://example.org/human> .
<http://example.org/Lisa> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://example.org/human> .
"""


def main() -> None:
    store = Store(parse(DOCUMENT))
    print(f"Asserted {store.n_asserted} triples (closure not built yet).")

    # Any read flushes the pending triples through the engine; an
    # explicit materialize() is only needed to get the stats object.
    stats = store.materialize()
    print(
        f"Materialized {stats.n_inferred} new triples in "
        f"{stats.iterations} iteration(s) "
        f"({stats.total_seconds * 1000:.1f} ms, "
        f"closure pre-pass produced {stats.closure_pairs} pairs)."
    )
    print("\nFull closure:")
    print(serialize(sorted(store.triples(), key=lambda t: t.n3())))

    # Pattern queries run against the closure.
    bart = next(iter(store.query(None, RDF.type, None))).subject
    print(f"All types of {bart}:")
    for triple in store.query(bart, RDF.type, None):
        print("  ", triple.object)

    # The same entry point takes BGP strings (well-known prefixes and
    # the 'a' shorthand are expanded).
    print("\nEvery animal, via a BGP string query:")
    for solution in store.query("?who a <http://example.org/animal>"):
        print("  ", solution["who"])

    # The schema itself was closed too (SCM-SCO).
    print("\nsubClassOf closure:")
    for triple in store.query(None, RDFS.subClassOf, None):
        print("  ", triple.subject, "⊑", triple.object)


if __name__ == "__main__":
    main()
