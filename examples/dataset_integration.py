#!/usr/bin/env python3
"""Dataset integration with RDFS-Plus: the ruleset's motivating use case.

"RDFS-Plus was conceived to provide a framework that allows the merging
of datasets and the discovery of triples of practical interest."

Two bibliographic vocabularies describe the same books: a library
catalogue and a bookstore feed.  They are merged purely declaratively:

* ``owl:sameAs`` links the duplicate entities;
* ``owl:equivalentProperty`` aligns lib:writtenBy with shop:author;
* ``owl:inverseOf`` bridges lib:wrote / lib:writtenBy;
* ``owl:InverseFunctionalProperty`` on ISBN *discovers* duplicate books
  automatically (PRP-IFP), without an explicit sameAs link.

Run:  python examples/dataset_integration.py
"""

from repro import InferrayEngine
from repro.rdf import IRI, OWL, RDF, Triple


def lib(name: str) -> IRI:
    return IRI(f"http://library.example/{name}")


def shop(name: str) -> IRI:
    return IRI(f"http://bookstore.example/{name}")


def build_dataset():
    return [
        # --- library catalogue ---------------------------------------
        Triple(lib("book/moby-dick"), lib("writtenBy"), lib("melville")),
        Triple(lib("book/moby-dick"), lib("isbn"), lib("isbn/9780142437247")),
        Triple(lib("melville"), lib("wrote"), lib("book/omoo")),
        # --- bookstore feed ------------------------------------------
        Triple(shop("p1851"), shop("author"), shop("authors/h-melville")),
        Triple(shop("p1851"), lib("isbn"), lib("isbn/9780142437247")),
        Triple(shop("p1851"), shop("price"), shop("usd/12")),
        # --- alignment (the RDFS-Plus 'glue') -------------------------
        Triple(lib("melville"), OWL.sameAs, shop("authors/h-melville")),
        Triple(lib("writtenBy"), OWL.equivalentProperty, shop("author")),
        Triple(lib("wrote"), OWL.inverseOf, lib("writtenBy")),
        Triple(lib("isbn"), RDF.type, OWL.InverseFunctionalProperty),
    ]


def main() -> None:
    engine = InferrayEngine("rdfs-plus")
    engine.load_triples(build_dataset())
    stats = engine.materialize()
    print(
        f"Merged closure: {stats.n_total} triples "
        f"({stats.n_inferred} inferred) in {stats.iterations} iterations."
    )

    closure = set(engine.triples())

    # 1. PRP-IFP discovered that the two book records are the same
    #    (identical ISBN under an inverse-functional property).
    discovered = Triple(lib("book/moby-dick"), OWL.sameAs, shop("p1851"))
    assert discovered in closure
    print("\n✓ ISBN match discovered:", discovered.n3())

    # 2. The price from the shop feed now applies to the library book.
    propagated = Triple(lib("book/moby-dick"), shop("price"), shop("usd/12"))
    assert propagated in closure
    print("✓ Price propagated:     ", propagated.n3())

    # 3. Property alignment: the shop's author edge exists under the
    #    library vocabulary too, for the *merged* entity.
    aligned = Triple(lib("book/moby-dick"), lib("writtenBy"),
                     shop("authors/h-melville"))
    assert aligned in closure
    print("✓ Vocabulary aligned:   ", aligned.n3())

    # 4. inverseOf: the library can answer 'what did Melville write?'
    #    including the shop-sourced book.
    wrote = {t.object for t in engine.query(lib("melville"), lib("wrote"))}
    assert lib("book/moby-dick") in wrote and lib("book/omoo") in wrote
    print(f"✓ lib:wrote answers {len(wrote)} books for Melville")

    print("\nEverything a federated query needs is now explicit data —")
    print("no query rewriting, no runtime inference.")


if __name__ == "__main__":
    main()
