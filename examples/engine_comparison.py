#!/usr/bin/env python3
"""Four engines, one workload: strategy comparison + cross-validation.

Runs Inferray and the three baseline strategies (naive pass-based,
RDFox-like hash semi-naive, OWLIM-like RETE) on a LUBM-like workload
under RDFS-Plus, verifies they compute the *identical* closure, and
prints each engine's own cost profile (iterations, duplicates, tokens).

Run:  python examples/engine_comparison.py
"""

import time

from repro import InferrayEngine
from repro.baselines import HashJoinEngine, NaiveEngine, ReteEngine
from repro.datasets import lubm_like


def main() -> None:
    data = lubm_like(8)
    print(f"Workload: LUBM-like, {len(data):,} triples, ruleset rdfs-plus\n")

    closures = {}
    print(f"{'engine':>10} {'ms':>8} {'inferred':>9} {'iters':>6}  notes")

    engine = InferrayEngine("rdfs-plus")
    engine.load_triples(data)
    started = time.perf_counter()
    stats = engine.materialize()
    elapsed = time.perf_counter() - started
    closures["inferray"] = set(engine.triples())
    print(
        f"{'inferray':>10} {elapsed * 1000:8.0f} {stats.n_inferred:9,} "
        f"{stats.iterations:6}  closure pre-pass: "
        f"{stats.closure_pairs} pairs"
    )

    for factory, note_key in (
        (HashJoinEngine, "duplicates"),
        (ReteEngine, "tokens"),
        (NaiveEngine, "duplicates"),
    ):
        baseline = factory("rdfs-plus")
        baseline.load_triples(data)
        started = time.perf_counter()
        baseline_stats = baseline.materialize()
        elapsed = time.perf_counter() - started
        closures[baseline.engine_name] = baseline.as_decoded_set()
        if note_key == "tokens":
            note = f"tokens: {baseline_stats.extra['tokens']:,}"
        else:
            note = f"duplicate derivations: {baseline_stats.duplicates:,}"
        print(
            f"{baseline.engine_name:>10} {elapsed * 1000:8.0f} "
            f"{baseline_stats.n_inferred:9,} "
            f"{baseline_stats.iterations:6}  {note}"
        )

    reference = closures["inferray"]
    for name, closure in closures.items():
        assert closure == reference, f"{name} diverged!"
    print(
        f"\n✓ all four engines computed the identical closure "
        f"({len(reference):,} triples)"
    )


if __name__ == "__main__":
    main()
