"""Setuptools shim.

Kept so that fully-offline environments (no `wheel` package available,
hence no PEP-517 editable builds) can still do a development install with
``python setup.py develop``.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
